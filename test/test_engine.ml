(* Tests for the task-model engine: task validation, pool lowering, the
   model-polymorphic objective, and the equivalence of ℓ=2 symmetric
   confusion-matrix pools with the legacy binary stack (scores within one
   ulp, juries identical across seeds). *)

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let within_one_ulp a b =
  a = b
  || Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float b))
     <= 1L

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let jury_ids pool =
  List.map Workers.Worker.id (Workers.Pool.to_list pool)

let symmetric_confusion ~id ~quality ~cost =
  Workers.Confusion.make ~id
    ~matrix:
      [| [| quality; 1. -. quality |]; [| 1. -. quality; quality |] |]
    ~cost ()

(* A fixed 3-label pool with diagonal-dominant workers. *)
let confusions3 =
  Array.init 6 (fun i ->
      let d = 0.55 +. (0.05 *. float_of_int i) in
      let off = (1. -. d) /. 2. in
      Workers.Confusion.make ~id:i
        ~matrix:[| [| d; off; off |]; [| off; d; off |]; [| off; off; d |] |]
        ~cost:(1. +. float_of_int (i mod 3))
        ())

(* ---- Task --------------------------------------------------------------- *)

let test_task_validation () =
  expect_invalid "single-entry prior" (fun () ->
      Engine.Task.make ~prior:[| 1. |]);
  expect_invalid "prior not summing to 1" (fun () ->
      Engine.Task.make ~prior:[| 0.4; 0.4 |]);
  expect_invalid "negative entry" (fun () ->
      Engine.Task.make ~prior:[| -0.2; 1.2 |]);
  expect_invalid "alpha out of range" (fun () ->
      Engine.Task.binary ~alpha:1.5);
  let t = Engine.Task.make ~prior:[| 0.2; 0.5; 0.3 |] in
  check_int "labels" 3 (Engine.Task.labels t);
  check_bool "not binary" false (Engine.Task.is_binary t);
  expect_invalid "alpha of a 3-label task" (fun () -> Engine.Task.alpha t)

let test_task_empty_score () =
  List.iter
    (fun alpha ->
      let t = Engine.Task.binary ~alpha in
      check_bool
        (Printf.sprintf "empty score bitwise at alpha=%g" alpha)
        true
        (Engine.Task.empty_score t = Float.max alpha (1. -. alpha)))
    [ 0.5; 0.3; 0.77; 0.05 ];
  let t = Engine.Task.make ~prior:[| 0.2; 0.5; 0.3 |] in
  check_float "3-label empty score is the mode" 0.5 (Engine.Task.empty_score t)

let test_task_fingerprint () =
  let a = Engine.Task.binary ~alpha:0.3
  and b = Engine.Task.make ~prior:[| 0.3; 0.7 |]
  and c = Engine.Task.make ~prior:[| 0.3000000001; 0.6999999999 |] in
  check_bool "equal tasks fingerprint equally" true
    (Engine.Task.fingerprint a = Engine.Task.fingerprint b);
  check_bool "different priors fingerprint differently" false
    (Engine.Task.fingerprint a = Engine.Task.fingerprint c)

(* ---- Pool lowering ------------------------------------------------------ *)

let test_pool_lowering () =
  let confusions =
    Array.init 4 (fun i ->
        symmetric_confusion ~id:i
          ~quality:(0.6 +. (0.08 *. float_of_int i))
          ~cost:(1. +. float_of_int i))
  in
  let epool = Engine.Pool.of_confusions confusions in
  (match Engine.Pool.to_workers epool with
  | None -> Alcotest.fail "symmetric 2x2 pool did not lower to Binary"
  | Some pool ->
      check_int "size preserved" 4 (Workers.Pool.size pool);
      let qs = Workers.Pool.qualities pool in
      Array.iteri
        (fun i q ->
          check_bool
            (Printf.sprintf "quality %d recovered bitwise" i)
            true
            (q = 0.6 +. (0.08 *. float_of_int i)))
        qs);
  check_int "labels" 2 (Engine.Pool.labels epool)

let test_pool_asymmetric_stays_matrix () =
  let c =
    Workers.Confusion.make ~id:0
      ~matrix:[| [| 0.9; 0.1 |]; [| 0.3; 0.7 |] |]
      ~cost:1. ()
  in
  let epool = Engine.Pool.of_confusions [| c |] in
  check_bool "asymmetric 2x2 stays Matrix" true
    (Engine.Pool.to_workers epool = None);
  check_int "labels" 2 (Engine.Pool.labels epool)

let test_pool_mixed_labels () =
  let two = symmetric_confusion ~id:0 ~quality:0.8 ~cost:1. in
  expect_invalid "mixed label counts" (fun () ->
      Engine.Pool.of_confusions [| two; confusions3.(0) |])

let test_pool_sub () =
  let epool = Engine.Pool.of_confusions confusions3 in
  expect_invalid "flag length mismatch" (fun () ->
      Engine.Pool.sub epool [| true; false |]);
  let subset =
    Engine.Pool.sub epool [| true; false; true; false; false; true |]
  in
  check_int "subset size" 3 (Engine.Pool.size subset);
  check_bool "Matrix subset stays Matrix" true
    (Engine.Pool.to_workers subset = None);
  Alcotest.(check (list int)) "ids preserved" [ 0; 2; 5 ]
    (Engine.Pool.ids subset)

(* ---- Objective ---------------------------------------------------------- *)

let test_objective_empty () =
  let empty = Engine.Pool.of_workers (Workers.Pool.of_list []) in
  List.iter
    (fun task ->
      let expected = Engine.Task.empty_score task in
      check_float "bucket empty" expected
        (Engine.Objective.score (Engine.Objective.bv_bucket ()) ~task empty);
      check_float "exact empty" expected
        (Engine.Objective.score Engine.Objective.bv_exact ~task empty))
    [ Engine.Task.binary ~alpha:0.7; Engine.Task.make ~prior:[| 0.2; 0.5; 0.3 |] ]

let test_objective_label_mismatch () =
  let binary_pool =
    Engine.Pool.of_workers
      (Workers.Pool.of_list
         [ Workers.Worker.make ~id:0 ~quality:0.8 ~cost:1. () ])
  in
  let matrix_pool = Engine.Pool.of_confusions confusions3 in
  let three = Engine.Task.make ~prior:[| 0.2; 0.5; 0.3 |] in
  let two = Engine.Task.binary ~alpha:0.5 in
  expect_invalid "3-label task on binary pool" (fun () ->
      Engine.Objective.score (Engine.Objective.bv_bucket ()) ~task:three
        binary_pool);
  expect_invalid "2-label task on 3-label pool" (fun () ->
      Engine.Objective.score (Engine.Objective.bv_bucket ()) ~task:two
        matrix_pool)

let test_objective_exact_vs_bucket_multiclass () =
  (* Small 3-label pool: the bucket estimator should land near the exact
     enumeration (same sanity bound the binary stack is tested with). *)
  let epool = Engine.Pool.sub (Engine.Pool.of_confusions confusions3)
      [| true; true; true; false; false; false |]
  in
  let task = Engine.Task.make ~prior:[| 0.2; 0.5; 0.3 |] in
  let exact = Engine.Objective.score Engine.Objective.bv_exact ~task epool in
  let bucket =
    Engine.Objective.score (Engine.Objective.bv_bucket ()) ~task epool
  in
  Alcotest.(check (float 0.05)) "bucket near exact" exact bucket

(* ---- ℓ=2 equivalence with the legacy binary stack (satellite) ----------- *)

let case_gen =
  QCheck2.Gen.(
    int_range 1 12 >>= fun n ->
    array_size (return n)
      (pair (float_range 0.05 0.95) (float_range 0.1 5.))
    >>= fun specs ->
    float_range 0.05 0.95 >>= fun alpha ->
    int_bound 1_000_000 >>= fun seed -> return (specs, alpha, seed))

let equivalence_prop (specs, alpha, seed) =
  let workers =
    Workers.Pool.of_list
      (List.mapi
         (fun id (q, c) -> Workers.Worker.make ~id ~quality:q ~cost:c ())
         (Array.to_list specs))
  in
  let confusions =
    Array.mapi
      (fun id (q, c) -> symmetric_confusion ~id ~quality:q ~cost:c)
      specs
  in
  let epool = Engine.Pool.of_confusions confusions in
  (match Engine.Pool.to_workers epool with
  | None -> Alcotest.fail "did not lower"
  | Some lowered ->
      let qs = Workers.Pool.qualities lowered in
      Array.iteri
        (fun i (q, _) ->
          if not (within_one_ulp q qs.(i)) then
            Alcotest.failf "quality %d drifted: %h vs %h" i q qs.(i))
        specs);
  let task = Engine.Task.binary ~alpha in
  let engine_score =
    Engine.Objective.score (Engine.Objective.bv_bucket ()) ~task epool
  in
  let legacy_score =
    Jq.Bucket.estimate ~alpha (Workers.Pool.qualities workers)
  in
  if not (within_one_ulp engine_score legacy_score) then
    Alcotest.failf "jq scores disagree: %h vs %h" engine_score legacy_score;
  let budget = 0.5 *. Engine.Pool.total_cost epool in
  let engine_result =
    Jsp.Annealing.solve_engine
      ~rng:(Prob.Rng.create seed)
      ~task ~budget epool
  in
  let legacy_result =
    Jsp.Annealing.solve_optjs
      ~rng:(Prob.Rng.create seed)
      ~alpha ~budget workers
  in
  let engine_ids = Engine.Pool.ids engine_result.Jsp.Solver.jury in
  let legacy_ids = jury_ids legacy_result.Jsp.Solver.jury in
  if engine_ids <> legacy_ids then
    Alcotest.failf "juries disagree: {%s} vs {%s}"
      (String.concat "," (List.map string_of_int engine_ids))
      (String.concat "," (List.map string_of_int legacy_ids));
  within_one_ulp engine_result.Jsp.Solver.score
    legacy_result.Jsp.Solver.score

(* ---- Annealing over the engine ------------------------------------------ *)

let test_engine_matrix_determinism () =
  let epool = Engine.Pool.of_confusions confusions3 in
  let task = Engine.Task.make ~prior:[| 0.2; 0.5; 0.3 |] in
  let budget = 4. in
  let solve () =
    Jsp.Annealing.solve_engine ~rng:(Prob.Rng.create 7) ~task ~budget epool
  in
  let a = solve () and b = solve () in
  Alcotest.(check (list int)) "same jury" (Engine.Pool.ids a.Jsp.Solver.jury)
    (Engine.Pool.ids b.Jsp.Solver.jury);
  check_bool "same score bitwise" true
    (a.Jsp.Solver.score = b.Jsp.Solver.score);
  check_bool "feasible" true
    (Engine.Pool.total_cost a.Jsp.Solver.jury <= budget);
  check_bool "no worse than the empty jury" true
    (a.Jsp.Solver.score >= Engine.Task.empty_score task)

(* One caller-owned memo shared across solves that disagree on alpha,
   budget and seed: salted keys must keep them from observing each other
   (satellite: sharing is safe by construction). *)
let test_memo_sharing_binary () =
  let pool =
    Workers.Pool.of_list
      (List.init 6 (fun id ->
           Workers.Worker.make ~id
             ~quality:(0.55 +. (0.06 *. float_of_int id))
             ~cost:(1. +. float_of_int (id mod 3))
             ()))
  in
  let memo = Jsp.Objective_cache.create ~n:(Workers.Pool.size pool) () in
  let run ?memo ~alpha ~budget ~seed () =
    Jsp.Annealing.solve_optjs ?memo ~rng:(Prob.Rng.create seed) ~alpha ~budget
      pool
  in
  let check_same what (a : _ Jsp.Solver.result) (b : _ Jsp.Solver.result) =
    Alcotest.(check (list int))
      (what ^ ": jury") (jury_ids a.jury) (jury_ids b.jury);
    check_bool (what ^ ": score bitwise") true (a.score = b.score)
  in
  let shared1 = run ~memo ~alpha:0.5 ~budget:6. ~seed:1 () in
  let fresh1 = run ~alpha:0.5 ~budget:6. ~seed:1 () in
  check_same "first request" shared1 fresh1;
  let shared2 = run ~memo ~alpha:0.3 ~budget:4. ~seed:2 () in
  let fresh2 = run ~alpha:0.3 ~budget:4. ~seed:2 () in
  check_same "different alpha/budget/seed" shared2 fresh2;
  let shared3 = run ~memo ~alpha:0.5 ~budget:5.5 ~seed:1 () in
  let fresh3 = run ~alpha:0.5 ~budget:5.5 ~seed:1 () in
  check_same "different budget only" shared3 fresh3;
  (* Warm replay of the very first request: byte-identical. *)
  let replay = run ~memo ~alpha:0.5 ~budget:6. ~seed:1 () in
  check_same "warm replay" replay shared1

let test_memo_sharing_matrix () =
  let epool = Engine.Pool.of_confusions confusions3 in
  let memo =
    Jsp.Objective_cache.create ~n:(Engine.Pool.size epool) ()
  in
  let run ?memo ~prior ~budget ~seed () =
    Jsp.Annealing.solve_engine ?memo
      ~rng:(Prob.Rng.create seed)
      ~task:(Engine.Task.make ~prior)
      ~budget epool
  in
  let check_same what (a : _ Jsp.Solver.result) (b : _ Jsp.Solver.result) =
    Alcotest.(check (list int))
      (what ^ ": jury")
      (Engine.Pool.ids a.jury)
      (Engine.Pool.ids b.jury);
    check_bool (what ^ ": score bitwise") true (a.score = b.score)
  in
  let p1 = [| 0.2; 0.5; 0.3 |] and p2 = [| 0.4; 0.4; 0.2 |] in
  let shared1 = run ~memo ~prior:p1 ~budget:4. ~seed:3 () in
  let fresh1 = run ~prior:p1 ~budget:4. ~seed:3 () in
  check_same "first request" shared1 fresh1;
  let shared2 = run ~memo ~prior:p2 ~budget:5. ~seed:4 () in
  let fresh2 = run ~prior:p2 ~budget:5. ~seed:4 () in
  check_same "different prior/budget/seed" shared2 fresh2;
  let replay = run ~memo ~prior:p1 ~budget:4. ~seed:3 () in
  check_same "warm replay" replay shared1

let test_multi_jsp_restarts () =
  Alcotest.check_raises "restarts < 1"
    (Invalid_argument "Multi_jsp.select: restarts < 1") (fun () ->
      ignore
        (Jsp.Multi_jsp.select ~restarts:0
           ~rng:(Prob.Rng.create 1)
           ~prior:[| 0.2; 0.5; 0.3 |]
           ~budget:3. confusions3))

let () =
  Alcotest.run "engine"
    [
      ( "task",
        [
          Alcotest.test_case "validation" `Quick test_task_validation;
          Alcotest.test_case "empty score" `Quick test_task_empty_score;
          Alcotest.test_case "fingerprint" `Quick test_task_fingerprint;
        ] );
      ( "pool",
        [
          Alcotest.test_case "symmetric 2x2 lowers to Binary" `Quick
            test_pool_lowering;
          Alcotest.test_case "asymmetric stays Matrix" `Quick
            test_pool_asymmetric_stays_matrix;
          Alcotest.test_case "mixed labels rejected" `Quick
            test_pool_mixed_labels;
          Alcotest.test_case "sub" `Quick test_pool_sub;
        ] );
      ( "objective",
        [
          Alcotest.test_case "empty pool scores the prior mode" `Quick
            test_objective_empty;
          Alcotest.test_case "label mismatch rejected" `Quick
            test_objective_label_mismatch;
          Alcotest.test_case "bucket near exact (3 labels)" `Quick
            test_objective_exact_vs_bucket_multiclass;
        ] );
      ( "equivalence",
        [
          qtest ~count:60 "l=2 symmetric matrix pools match the binary stack"
            case_gen equivalence_prop;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "matrix solve is deterministic" `Quick
            test_engine_matrix_determinism;
          Alcotest.test_case "shared memo is safe (binary)" `Quick
            test_memo_sharing_binary;
          Alcotest.test_case "shared memo is safe (matrix)" `Quick
            test_memo_sharing_matrix;
          Alcotest.test_case "select rejects restarts < 1" `Quick
            test_multi_jsp_restarts;
        ] );
    ]
