(* Tests for Jury Quality computation: exact enumeration, MV closed form,
   Algorithm 1 (bucket approximation) + Algorithm 2 (pruning), error bounds
   (section 4.4), prior folding (Theorem 3), monotonicity (Lemmas 1-2), BV
   optimality (Theorem 1 / Corollary 1), and the multi-class extension. *)

open Voting

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let quality_gen = QCheck2.Gen.float_range 0.01 0.99
let reliable_gen = QCheck2.Gen.float_range 0.5 0.99
let alpha_gen = QCheck2.Gen.float_range 0. 1.

let jury_gen ?(min = 1) ?(max = 8) g =
  QCheck2.Gen.(int_range min max >>= fun n -> array_size (return n) g)

let fig2_qualities = [| 0.9; 0.6; 0.6 |]

(* ---- Exact ------------------------------------------------------------- *)

let test_exact_likelihoods () =
  let p0, p1 = Jq.Exact.likelihoods ~qualities:fig2_qualities (Vote.voting_of_ints [ 1; 0; 0 ]) in
  check_close 1e-12 "P(V|t=0)" (0.1 *. 0.6 *. 0.6) p0;
  check_close 1e-12 "P(V|t=1)" (0.9 *. 0.4 *. 0.4) p1

let test_exact_fig2 () =
  check_close 1e-12 "MV 79.2%" 0.792
    (Jq.Exact.jq Classic.majority ~alpha:0.5 ~qualities:fig2_qualities);
  check_close 1e-12 "BV 90%" 0.9
    (Jq.Exact.jq Bayesian.strategy ~alpha:0.5 ~qualities:fig2_qualities)

let test_exact_constant () =
  (* CONST-0 is right exactly when t = 0, i.e. with probability alpha. *)
  check_close 1e-12 "constant no" 0.3
    (Jq.Exact.jq (Classic.constant Vote.No) ~alpha:0.3 ~qualities:fig2_qualities);
  check_close 1e-12 "coin" 0.5
    (Jq.Exact.jq Randomized.coin_flip ~alpha:0.3 ~qualities:fig2_qualities)

let test_exact_optimal_equals_bv =
  qtest "jq_optimal = jq(BV)" QCheck2.Gen.(pair (jury_gen quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      Float.abs
        (Jq.Exact.jq_optimal ~alpha ~qualities:qs
        -. Jq.Exact.jq Bayesian.strategy ~alpha ~qualities:qs)
      < 1e-9)

let test_exact_bounds =
  qtest "JQ lies in [max(alpha,1-alpha), 1] for BV"
    QCheck2.Gen.(pair (jury_gen quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      let jq = Jq.Exact.jq_optimal ~alpha ~qualities:qs in
      jq >= Float.max alpha (1. -. alpha) -. 1e-9 && jq <= 1. +. 1e-9)

let test_exact_too_large () =
  Alcotest.check_raises "jury cap"
    (Invalid_argument "Exact.jq: jury too large for exact enumeration") (fun () ->
      ignore (Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:(Array.make 21 0.7)))

let test_exact_table_totals () =
  let rows = Jq.Exact.jq_table Classic.majority ~alpha:0.5 ~qualities:fig2_qualities in
  check_int "8 votings" 8 (List.length rows);
  let total = List.fold_left (fun acc (_, _, _, c) -> acc +. c) 0. rows in
  check_close 1e-12 "contributions sum to JQ" 0.792 total;
  let mass = List.fold_left (fun acc (_, p0, p1, _) -> acc +. p0 +. p1) 0. rows in
  check_close 1e-12 "probability mass 1" 1. mass

(* ---- Theorem 1: BV optimality ------------------------------------------ *)

let all_fixed_strategies =
  Registry.all
  @ [
      Classic.constant Vote.No;
      Classic.constant Vote.Yes;
      Randomized.mixture 0.3 Classic.majority Randomized.randomized_majority;
    ]

let test_bv_optimality =
  qtest ~count:300 "BV beats every strategy (Theorem 1)"
    QCheck2.Gen.(pair (jury_gen quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      let bv = Jq.Exact.jq_optimal ~alpha ~qualities:qs in
      List.for_all
        (fun s -> Jq.Exact.jq s ~alpha ~qualities:qs <= bv +. 1e-9)
        all_fixed_strategies)

let test_bv_beats_random_weighted =
  qtest ~count:200 "BV beats random weighted strategies"
    QCheck2.Gen.(
      jury_gen quality_gen >>= fun qs ->
      pair (return qs)
        (array_size (return (Array.length qs)) (float_range 0. 5.)))
    (fun (qs, weights) ->
      let bv = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      Jq.Exact.jq (Classic.weighted_majority ~weights) ~alpha:0.5 ~qualities:qs
      <= bv +. 1e-9
      && Jq.Exact.jq
           (Randomized.randomized_weighted_majority ~weights)
           ~alpha:0.5 ~qualities:qs
         <= bv +. 1e-9)

(* ---- MV closed form ----------------------------------------------------- *)

let test_mv_closed_matches_exact =
  qtest ~count:300 "closed-form MV JQ = enumeration"
    QCheck2.Gen.(pair (jury_gen quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      Float.abs
        (Jq.Mv_closed.jq ~alpha ~qualities:qs
        -. Jq.Exact.jq Classic.majority ~alpha ~qualities:qs)
      < 1e-9)

let test_half_closed_matches_exact =
  qtest "closed-form Half JQ = enumeration"
    QCheck2.Gen.(pair (jury_gen quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      Float.abs
        (Jq.Mv_closed.jq_half ~alpha ~qualities:qs
        -. Jq.Exact.jq Classic.half ~alpha ~qualities:qs)
      < 1e-9)

let test_tie_coin_matches_exact =
  qtest "coin-tie MV JQ = enumeration" (jury_gen quality_gen) (fun qs ->
      Float.abs
        (Jq.Mv_closed.jq_tie_coin qs
        -. Jq.Exact.jq Classic.majority_tie_coin ~alpha:0.5 ~qualities:qs)
      < 1e-9)

let test_mv_closed_fig2 () =
  check_close 1e-12 "fig2 MV" 0.792 (Jq.Mv_closed.jq ~alpha:0.5 ~qualities:fig2_qualities)

let test_mv_closed_empty () =
  check_close 1e-12 "empty jury answers 1" 0.7 (Jq.Mv_closed.jq ~alpha:0.3 ~qualities:[||]);
  check_close 1e-12 "half empty answers 0" 0.3 (Jq.Mv_closed.jq_half ~alpha:0.3 ~qualities:[||])

(* ---- Bucket approximation (Algorithm 1) ---------------------------------- *)

let test_bucket_fig2 () =
  check_close 1e-9 "fig2 estimate" 0.9 (Jq.Bucket.estimate fig2_qualities)

let test_bucket_never_exceeds_exact =
  qtest ~count:300 "estimate <= exact JQ" (jury_gen reliable_gen) (fun qs ->
      Jq.Bucket.estimate ~num_buckets:17 qs
      <= Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs +. 1e-9)

let test_bucket_error_bound =
  qtest ~count:300 "error within the section-4.4 bound" (jury_gen reliable_gen)
    (fun qs ->
      let stats = Jq.Bucket.estimate_stats ~num_buckets:25 qs in
      let exact = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      exact -. stats.Jq.Bucket.value <= stats.Jq.Bucket.error_bound +. 1e-9)

let test_bucket_converges =
  qtest ~count:100 "many buckets converge to exact" (jury_gen reliable_gen) (fun qs ->
      let est = Jq.Bucket.estimate ~num_buckets:(200 * Array.length qs) qs in
      let exact = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      exact -. est < 0.01)

let test_bucket_pruning_invariant =
  qtest ~count:300 "pruning does not change the estimate" (jury_gen reliable_gen)
    (fun qs ->
      Float.abs
        (Jq.Bucket.estimate ~pruning:true qs -. Jq.Bucket.estimate ~pruning:false qs)
      < 1e-9)

let test_bucket_pruning_invariant_large () =
  let rng = Prob.Rng.create 77 in
  let qs =
    Workers.Pool.qualities
      (Workers.Generator.gaussian_pool rng Workers.Generator.default 120)
  in
  check_close 1e-9 "large jury pruning invariant"
    (Jq.Bucket.estimate ~pruning:false qs)
    (Jq.Bucket.estimate ~pruning:true qs)

let test_bucket_low_quality_reinterpretation =
  (* Workers below 0.5 are flipped internally; the estimate must still track
     the exact JQ, which handles them natively. *)
  qtest ~count:200 "q < 0.5 workers handled" (jury_gen quality_gen) (fun qs ->
      let stats = Jq.Bucket.estimate_stats ~num_buckets:400 qs in
      let exact = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      exact -. stats.Jq.Bucket.value <= stats.Jq.Bucket.error_bound +. 1e-9
      && stats.Jq.Bucket.value <= exact +. 1e-9)

let test_bucket_alpha_matches_exact =
  qtest ~count:200 "estimate with prior tracks exact"
    QCheck2.Gen.(pair (jury_gen reliable_gen) (float_range 0.05 0.95))
    (fun (qs, alpha) ->
      let est = Jq.Bucket.estimate ~num_buckets:800 ~alpha qs in
      let exact = Jq.Exact.jq_optimal ~alpha ~qualities:qs in
      Float.abs (exact -. est) < 0.02)

let test_bucket_all_coins () =
  check_close 1e-9 "all 0.5 -> 0.5" 0.5 (Jq.Bucket.estimate [| 0.5; 0.5; 0.5 |])

let test_bucket_certain_worker () =
  check_float "q = 1 -> 1" 1. (Jq.Bucket.estimate [| 1.0; 0.7 |]);
  check_float "alpha = 1 -> 1" 1. (Jq.Bucket.estimate ~alpha:1. [| 0.7 |]);
  check_float "alpha = 0 -> 1" 1. (Jq.Bucket.estimate ~alpha:0. [| 0.7 |])

let test_bucket_shortcut () =
  let stats = Jq.Bucket.estimate_stats [| 0.995; 0.7 |] in
  check_float "returns top quality" 0.995 stats.Jq.Bucket.value;
  (* With the shortcut disabled the estimate must not be worse than the
     shortcut's lower bound. *)
  let full = Jq.Bucket.estimate ~high_quality_shortcut:false [| 0.995; 0.7 |] in
  check_bool "full run at least as high" true (full >= 0.995 -. 1e-9)

let test_bucket_stats_instrumentation () =
  let rng = Prob.Rng.create 123 in
  let qs =
    Workers.Pool.qualities
      (Workers.Generator.gaussian_pool rng Workers.Generator.default 40)
  in
  let pruned = Jq.Bucket.estimate_stats ~pruning:true qs in
  let unpruned = Jq.Bucket.estimate_stats ~pruning:false qs in
  check_bool "pruning settles pairs" true (pruned.Jq.Bucket.pruned_pairs > 0);
  check_int "no pruning, no settled pairs" 0 unpruned.Jq.Bucket.pruned_pairs;
  check_bool "pruned map never larger" true
    (pruned.Jq.Bucket.max_map_size <= unpruned.Jq.Bucket.max_map_size);
  check_bool "same value" true
    (Float.abs (pruned.Jq.Bucket.value -. unpruned.Jq.Bucket.value) < 1e-9);
  check_bool "delta positive" true (pruned.Jq.Bucket.delta > 0.);
  check_bool "upper is max logit" true
    (Float.abs
       (pruned.Jq.Bucket.upper
       -. Array.fold_left
            (fun acc q -> Float.max acc (Prob.Log_space.logit q))
            0. qs)
    < 1e-9)

let test_bucket_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Bucket.estimate: empty jury")
    (fun () -> ignore (Jq.Bucket.estimate [||]));
  Alcotest.check_raises "buckets" (Invalid_argument "Bucket.estimate: num_buckets <= 0")
    (fun () -> ignore (Jq.Bucket.estimate ~num_buckets:0 [| 0.7 |]));
  Alcotest.check_raises "quality" (Invalid_argument "Bucket.estimate: quality outside [0, 1]")
    (fun () -> ignore (Jq.Bucket.estimate [| 1.5 |]))

let test_bucketize_nearest =
  qtest "bucketize snaps to the nearest bucket"
    (jury_gen ~min:1 ~max:10 (QCheck2.Gen.float_range 0.5 0.99))
    (fun qs ->
      let logits = Array.map Prob.Log_space.logit qs in
      let buckets, delta = Jq.Bucket.bucketize ~num_buckets:50 logits in
      if delta = 0. then Array.for_all (fun b -> b = 0) buckets
      else
        Array.for_all2
          (fun phi b -> Float.abs (phi -. (float_of_int b *. delta)) <= (delta /. 2.) +. 1e-12)
          logits buckets)

let test_bucket_more_buckets_tighter =
  qtest ~count:100 "finer buckets never hurt much" (jury_gen reliable_gen) (fun qs ->
      let coarse = Jq.Bucket.estimate ~num_buckets:10 qs in
      let fine = Jq.Bucket.estimate ~num_buckets:1000 qs in
      (* Both undershoot the exact value; the fine one must be closer. *)
      let exact = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      exact -. fine <= (exact -. coarse) +. 1e-6)

(* ---- Flat dense kernel vs hashtable baseline ------------------------------- *)

let test_flat_matches_hashtbl =
  qtest ~count:300 "flat and hashtbl kernels agree (value + pruned accounting)"
    QCheck2.Gen.(triple (jury_gen ~max:20 quality_gen) alpha_gen bool)
    (fun (qs, alpha, pruning) ->
      let run impl =
        Jq.Bucket.estimate_stats ~impl ~pruning ~alpha
          ~high_quality_shortcut:false qs
      in
      let flat = run Jq.Bucket.Flat and ht = run Jq.Bucket.Hashtbl in
      Float.abs (flat.Jq.Bucket.value -. ht.Jq.Bucket.value) < 1e-9
      && flat.Jq.Bucket.pruned_pairs = ht.Jq.Bucket.pruned_pairs
      && (pruning || flat.Jq.Bucket.pruned_pairs = 0)
      && flat.Jq.Bucket.error_bound = ht.Jq.Bucket.error_bound)

let test_flat_hashtbl_underestimate =
  qtest ~count:200 "both kernels underestimate exact JQ within the bound"
    QCheck2.Gen.(pair (jury_gen quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      let exact = Jq.Exact.jq_optimal ~alpha ~qualities:qs in
      List.for_all
        (fun impl ->
          let s =
            Jq.Bucket.estimate_stats ~impl ~num_buckets:400 ~alpha
              ~high_quality_shortcut:false qs
          in
          s.Jq.Bucket.value <= exact +. 1e-9
          && exact -. s.Jq.Bucket.value <= s.Jq.Bucket.error_bound +. 1e-9)
        [ Jq.Bucket.Flat; Jq.Bucket.Hashtbl ])

let test_flat_pruning_agreement =
  qtest ~count:200 "flat kernel: pruning on/off agree within the error bound"
    QCheck2.Gen.(pair (jury_gen ~max:20 quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      let run pruning =
        Jq.Bucket.estimate_stats ~pruning ~alpha ~high_quality_shortcut:false qs
      in
      let on = run true and off = run false in
      Float.abs (on.Jq.Bucket.value -. off.Jq.Bucket.value)
      <= on.Jq.Bucket.error_bound +. 1e-9)

let test_workspace_reuse_deterministic =
  (* Byte-identical replies at any cache warmth: a workspace warmed by
     differently-sized problems must return bit-equal values. *)
  qtest ~count:100 "reused workspace is bit-identical to a fresh one"
    QCheck2.Gen.(pair (jury_gen ~max:16 quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      let ws = Jq.Workspace.create () in
      let v1 = Jq.Bucket.estimate ~workspace:ws ~alpha qs in
      ignore (Jq.Bucket.estimate ~workspace:ws (Array.make 33 0.77));
      ignore (Jq.Bucket.estimate ~workspace:ws ~pruning:false [| 0.9; 0.51 |]);
      let v2 = Jq.Bucket.estimate ~workspace:ws ~alpha qs in
      let fresh = Jq.Bucket.estimate ~workspace:(Jq.Workspace.create ()) ~alpha qs in
      v1 = v2 && v1 = fresh)

(* ---- Monotonicity (Lemmas 1 and 2) ---------------------------------------- *)

let test_lemma1_jury_size =
  qtest ~count:300 "adding a worker never lowers BV JQ (Lemma 1)"
    QCheck2.Gen.(triple (jury_gen ~max:7 quality_gen) quality_gen alpha_gen)
    (fun (qs, extra, alpha) ->
      let before = Jq.Exact.jq_optimal ~alpha ~qualities:qs in
      let after = Jq.Exact.jq_optimal ~alpha ~qualities:(Array.append qs [| extra |]) in
      after >= before -. 1e-9)

let test_lemma2_quality =
  qtest ~count:300 "raising a reliable worker's quality never lowers BV JQ (Lemma 2)"
    QCheck2.Gen.(
      jury_gen reliable_gen >>= fun qs ->
      triple (return qs) (int_range 0 (Array.length qs - 1)) (float_range 0. 0.49))
    (fun (qs, idx, boost) ->
      let before = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      let improved = Array.copy qs in
      improved.(idx) <- Float.min 0.999 (qs.(idx) +. boost);
      let after = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:improved in
      after >= before -. 1e-9)

(* ---- Theorem 3: prior folding ---------------------------------------------- *)

let test_theorem3_exact =
  qtest ~count:300 "JQ(J,BV,alpha) = JQ(J + alpha-worker, BV, 0.5)"
    QCheck2.Gen.(pair (jury_gen ~max:7 quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      let lhs = Jq.Exact.jq_optimal ~alpha ~qualities:qs in
      let rhs =
        Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:(Array.append qs [| alpha |])
      in
      Float.abs (lhs -. rhs) < 1e-9)

let test_prior_fold () =
  Alcotest.(check (array (float 1e-12)))
    "alpha 0.5 unchanged" [| 0.7; 0.8 |]
    (Jq.Prior.fold ~alpha:0.5 [| 0.7; 0.8 |]);
  Alcotest.(check (array (float 1e-12)))
    "alpha folded" [| 0.7; 0.8; 0.3 |]
    (Jq.Prior.fold ~alpha:0.3 [| 0.7; 0.8 |]);
  check_bool "degenerate" true (Jq.Prior.is_degenerate 0. && Jq.Prior.is_degenerate 1.);
  check_bool "not degenerate" false (Jq.Prior.is_degenerate 0.5)

let test_coin_worker_harmless =
  qtest "a coin worker never changes BV JQ" (jury_gen ~max:7 quality_gen) (fun qs ->
      Float.abs
        (Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs
        -. Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:(Array.append qs [| 0.5 |]))
      < 1e-9)

(* ---- Reinterpretation (section 3.3) ------------------------------------------ *)

let test_reinterpret_canonicalize () =
  let canonical, flipped = Jq.Reinterpret.canonicalize [| 0.3; 0.7; 0.5 |] in
  Alcotest.(check (array (float 1e-12))) "canonical" [| 0.7; 0.7; 0.5 |] canonical;
  Alcotest.(check (array bool)) "flips" [| true; false; false |] flipped

let test_reinterpret_preserves_bv_jq =
  qtest ~count:300 "flipping sub-0.5 workers preserves BV JQ" (jury_gen quality_gen)
    (fun qs ->
      let canonical = Jq.Reinterpret.canonical_qualities qs in
      Float.abs
        (Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs
        -. Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:canonical)
      < 1e-9)

let test_reinterpret_helps_mv =
  qtest ~count:200 "flip-corrected MV at least as good as raw MV"
    (jury_gen quality_gen) (fun qs ->
      let _, flipped = Jq.Reinterpret.canonicalize qs in
      let raw = Jq.Exact.jq Classic.majority ~alpha:0.5 ~qualities:qs in
      let corrected =
        Jq.Exact.jq (Jq.Reinterpret.flipping_majority flipped) ~alpha:0.5 ~qualities:qs
      in
      corrected >= raw -. 1e-9)

let test_apply_flips () =
  let v =
    Jq.Reinterpret.apply_flips [| true; false |] (Vote.voting_of_ints [ 0; 0 ])
  in
  check_int "first flipped" 1 (Vote.to_int v.(0));
  check_int "second kept" 0 (Vote.to_int v.(1))

(* ---- Pruning (Algorithm 2) ----------------------------------------------------- *)

let test_aggregate_buckets () =
  Alcotest.(check (array int)) "suffix sums" [| 19; 16; 9; 5; 2 |]
    (Jq.Prune.aggregate_buckets [| 3; 7; 4; 3; 2 |])

let test_prune_rule () =
  check_bool "settled positive" true
    (Jq.Prune.prune ~key:10 ~remaining_swing:9 = Jq.Prune.Settled 1.);
  check_bool "settled negative" true
    (Jq.Prune.prune ~key:(-10) ~remaining_swing:9 = Jq.Prune.Settled 0.);
  check_bool "keep undecided" true (Jq.Prune.prune ~key:5 ~remaining_swing:9 = Jq.Prune.Keep);
  check_bool "keep zero" true (Jq.Prune.prune ~key:0 ~remaining_swing:0 = Jq.Prune.Keep)

(* ---- Bounds ---------------------------------------------------------------------- *)

let test_bounds_formula () =
  check_close 1e-12 "explicit" (exp (11. *. 0.1 /. 4.) -. 1.)
    (Jq.Bounds.additive_bound ~upper:5. ~num_buckets:50 ~n:11);
  check_close 1e-12 "paper guarantee" (exp (5. /. 800.) -. 1.) Jq.Bounds.paper_guarantee;
  check_bool "under 1%" true (Jq.Bounds.paper_guarantee < 0.01)

let test_bounds_inverse =
  qtest "buckets_for_error achieves the target"
    QCheck2.Gen.(pair (int_range 1 200) (float_range 0.001 0.1))
    (fun (n, epsilon) ->
      let buckets = Jq.Bounds.buckets_for_error ~upper:5. ~n ~epsilon in
      Jq.Bounds.additive_bound ~upper:5. ~num_buckets:buckets ~n <= epsilon +. 1e-9)

let test_bounds_validation () =
  Alcotest.check_raises "epsilon" (Invalid_argument "Bounds.buckets_for_error: epsilon <= 0")
    (fun () -> ignore (Jq.Bounds.buckets_for_error ~upper:5. ~n:3 ~epsilon:0.))

(* ---- Multi-class (section 7) ------------------------------------------------------ *)

let sym3 q id =
  Workers.Confusion.make ~id
    ~matrix:
      [|
        [| q; (1. -. q) /. 2.; (1. -. q) /. 2. |];
        [| (1. -. q) /. 2.; q; (1. -. q) /. 2. |];
        [| (1. -. q) /. 2.; (1. -. q) /. 2.; q |];
      |]
    ~cost:1. ()

let uniform3 = [| 1. /. 3.; 1. /. 3.; 1. /. 3. |]

let mc_jury_gen =
  QCheck2.Gen.(
    int_range 1 4 >>= fun n ->
    array_size (return n) (float_range 0.34 0.95))

let test_mc_exact_bounds =
  qtest ~count:50 "multi-class JQ in [1/3, 1]" mc_jury_gen (fun qs ->
      let jury = Array.mapi (fun id q -> sym3 q id) qs in
      let jq = Jq.Multiclass_jq.jq_exact Multiclass.bayesian ~prior:uniform3 ~jury in
      jq >= (1. /. 3.) -. 1e-9 && jq <= 1. +. 1e-9)

let test_mc_bv_optimal =
  qtest ~count:50 "multi-class BV beats plurality and random ballot" mc_jury_gen
    (fun qs ->
      let jury = Array.mapi (fun id q -> sym3 q id) qs in
      let bv = Jq.Multiclass_jq.jq_exact Multiclass.bayesian ~prior:uniform3 ~jury in
      Jq.Multiclass_jq.jq_exact Multiclass.plurality ~prior:uniform3 ~jury <= bv +. 1e-9
      && Jq.Multiclass_jq.jq_exact Multiclass.random_ballot ~prior:uniform3 ~jury
         <= bv +. 1e-9)

let test_mc_binary_consistency =
  qtest ~count:100 "2-label exact JQ = binary exact JQ"
    (jury_gen ~max:6 (QCheck2.Gen.float_range 0.05 0.95))
    (fun qs ->
      let jury =
        Array.mapi
          (fun id q -> Workers.Confusion.symmetric_binary ~quality:q ~id ~cost:0.)
          qs
      in
      let mc = Jq.Multiclass_jq.jq_exact Multiclass.bayesian ~prior:[| 0.5; 0.5 |] ~jury in
      let bin = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      Float.abs (mc -. bin) < 1e-9)

let test_mc_estimate_tracks_exact =
  qtest ~count:50 "tuple-key estimate close to exact" mc_jury_gen (fun qs ->
      let jury = Array.mapi (fun id q -> sym3 q id) qs in
      let exact = Jq.Multiclass_jq.jq_exact Multiclass.bayesian ~prior:uniform3 ~jury in
      let est = Jq.Multiclass_jq.estimate_bv ~num_buckets:400 ~prior:uniform3 jury in
      Float.abs (exact -. est) < 0.02)

let test_mc_flat_matches_hashtbl =
  (* Zero prior components drive the per-label log-ratio keys to +inf,
     exercising the flat kernel's saturating dimension bounds against the
     hashtable's max_int saturation. *)
  qtest ~count:100 "multiclass flat and hashtbl kernels agree"
    QCheck2.Gen.(
      pair mc_jury_gen
        (oneofl [ uniform3; [| 0.5; 0.5; 0. |]; [| 0.; 0.3; 0.7 |] ]))
    (fun (qs, prior) ->
      let jury = Array.mapi (fun id q -> sym3 q id) qs in
      let run impl = Jq.Multiclass_jq.estimate_bv ~impl ~prior jury in
      Float.abs (run Jq.Bucket.Flat -. run Jq.Bucket.Hashtbl) < 1e-9)

let test_mc_flat_binary_matches_hashtbl =
  qtest ~count:100 "2-label flat and hashtbl kernels agree"
    (jury_gen ~max:8 (QCheck2.Gen.float_range 0.05 0.95))
    (fun qs ->
      let jury =
        Array.mapi
          (fun id q -> Workers.Confusion.symmetric_binary ~quality:q ~id ~cost:0.)
          qs
      in
      let run impl =
        Jq.Multiclass_jq.estimate_bv ~impl ~prior:[| 0.5; 0.5 |] jury
      in
      Float.abs (run Jq.Bucket.Flat -. run Jq.Bucket.Hashtbl) < 1e-9)

let test_mc_h_decomposition () =
  let jury = [| sym3 0.8 0; sym3 0.7 1 |] in
  let jq = Jq.Multiclass_jq.jq_exact Multiclass.bayesian ~prior:uniform3 ~jury in
  let sum =
    List.fold_left
      (fun acc t ->
        acc
        +. (uniform3.(t)
           *. Jq.Multiclass_jq.h_exact Multiclass.bayesian ~truth:t ~prior:uniform3 ~jury))
      0. [ 0; 1; 2 ]
  in
  check_close 1e-12 "JQ = sum alpha_t H(t)" jq sum

let test_mc_degenerate_prior () =
  let jury = [| sym3 0.8 0 |] in
  let prior = [| 1.; 0.; 0. |] in
  (* Truth is certainly 0: BV always answers 0, so JQ = 1. *)
  check_close 1e-9 "certain prior" 1.
    (Jq.Multiclass_jq.jq_exact Multiclass.bayesian ~prior ~jury);
  check_close 1e-9 "estimate too" 1. (Jq.Multiclass_jq.estimate_bv ~prior jury)

let test_mc_h_validation () =
  Alcotest.check_raises "truth range" (Invalid_argument "Multiclass_jq.h_estimate: truth")
    (fun () ->
      ignore (Jq.Multiclass_jq.h_estimate ~truth:5 ~prior:uniform3 [| sym3 0.8 0 |]))

(* ---- Pruned/truncated flat kernel ------------------------------------- *)

let mc_prior_gen =
  QCheck2.Gen.oneofl [ uniform3; [| 0.5; 0.3; 0.2 |]; [| 0.1; 0.1; 0.8 |] ]

let test_mc_truncation_underestimates =
  (* A deliberately coarse mass floor: the truncated estimate may only
     lose mass relative to the untruncated oracle, and no more than the
     tracked truncation error. *)
  qtest ~count:100 "truncated flat kernel only loses tracked mass"
    QCheck2.Gen.(pair mc_jury_gen mc_prior_gen)
    (fun (qs, prior) ->
      let jury = Array.mapi (fun id q -> sym3 q id) qs in
      let stats =
        Jq.Multiclass_jq.estimate_bv_stats ~trunc_mass:1e-3 ~prior jury
      in
      let oracle =
        Jq.Multiclass_jq.estimate_bv ~impl:Jq.Bucket.Hashtbl ~prior jury
      in
      stats.Jq.Multiclass_jq.value <= oracle +. 1e-9
      && oracle -. stats.Jq.Multiclass_jq.value
         <= stats.Jq.Multiclass_jq.trunc_error +. 1e-9)

let test_mc_error_bound =
  qtest ~count:60 "estimate within the certified bound of exact"
    QCheck2.Gen.(triple mc_jury_gen mc_prior_gen (int_range 25 400))
    (fun (qs, prior, num_buckets) ->
      let jury = Array.mapi (fun id q -> sym3 q id) qs in
      let stats =
        Jq.Multiclass_jq.estimate_bv_stats ~num_buckets ~prior jury
      in
      let exact = Jq.Multiclass_jq.jq_exact Multiclass.bayesian ~prior ~jury in
      Float.abs (exact -. stats.Jq.Multiclass_jq.value)
      <= stats.Jq.Multiclass_jq.error_bound +. 1e-9)

let test_mc_workspace_reuse_deterministic =
  qtest ~count:50 "multiclass workspace warmth does not change results"
    QCheck2.Gen.(pair mc_jury_gen mc_prior_gen)
    (fun (qs, prior) ->
      let jury = Array.mapi (fun id q -> sym3 q id) qs in
      let ws = Jq.Workspace.create () in
      let a = Jq.Multiclass_jq.estimate_bv ~workspace:ws ~prior jury in
      let b = Jq.Multiclass_jq.estimate_bv ~workspace:ws ~prior jury in
      let fresh =
        Jq.Multiclass_jq.estimate_bv ~workspace:(Jq.Workspace.create ()) ~prior
          jury
      in
      Float.equal a b && Float.equal a fresh)

let test_mc_warm_eval_allocation () =
  (* The sparse-frontier DP must run entirely on workspace buffers: after
     two warming evaluations (buffers at their high-water mark), each
     further evaluation may allocate only the fixed stats/accumulator
     scaffolding — a budget far below one DP frontier's worth. *)
  let jury =
    Array.init 12 (fun id -> sym3 (0.45 +. (0.04 *. float_of_int id)) id)
  in
  let prior = [| 0.2; 0.5; 0.3 |] in
  let ws = Jq.Workspace.create () in
  let eval () =
    ignore (Jq.Multiclass_jq.estimate_bv ~workspace:ws ~prior jury)
  in
  eval ();
  eval ();
  let reps = 50 in
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    eval ()
  done;
  let per_eval = (Gc.minor_words () -. before) /. float_of_int reps in
  if per_eval > 1024. then
    Alcotest.failf "warm multiclass eval allocates %.0f minor words" per_eval

let test_mc_nan_prior () =
  Alcotest.check_raises "NaN log-ratio rejected"
    (Invalid_argument "Multiclass_jq.bucketize_value: NaN log-ratio")
    (fun () ->
      ignore
        (Jq.Multiclass_jq.estimate_bv
           ~prior:[| 0.5; Float.nan; 0.5 |]
           [| sym3 0.8 0 |]))

let test_tuple_ranges_degenerate () =
  (* n = 0: the range collapses to the clamped initial digit and the
     verdict is decided by it alone. *)
  let sat = 1000 in
  let lo = Array.make 2 99 and hi = Array.make 2 99 in
  let live =
    Jq.Prune.tuple_ranges ~sat ~nd:2 ~n:0 ~labels:3 ~floors:[| 1; 0 |]
      ~binit:[| 2; 0 |] ~masses:[||] ~binc:[||] ~lo ~hi
  in
  check_bool "live" true live;
  Alcotest.(check (array int)) "lo = floors" [| 1; 0 |] (Array.sub lo 0 2);
  Alcotest.(check (array int)) "hi = floors" [| 1; 0 |] (Array.sub hi 0 2);
  check_bool "settled reject" false
    (Jq.Prune.tuple_ranges ~sat ~nd:2 ~n:0 ~labels:3 ~floors:[| 1; 0 |]
       ~binit:[| 0; 5 |] ~masses:[||] ~binc:[||] ~lo ~hi)

let test_tuple_ranges_single_worker () =
  (* One worker with increments ±1 from digit 0 against floor 0: every
     state's range must pin to the floor (the +1 branch is settled
     accepted and collapses, the −1 branch is settled rejected). *)
  let sat = 1000 in
  let lo = Array.make 2 99 and hi = Array.make 2 99 in
  let live =
    Jq.Prune.tuple_ranges ~sat ~nd:1 ~n:1 ~labels:2 ~floors:[| 0 |]
      ~binit:[| 0 |] ~masses:[| 0.5; 0.5 |] ~binc:[| 1; -1 |] ~lo ~hi
  in
  check_bool "live" true live;
  check_int "state0 lo" 0 lo.(0);
  check_int "state0 hi" 0 hi.(0);
  check_int "state1 lo" 0 lo.(1);
  check_int "state1 hi" 0 hi.(1)

let test_multiclass_bound () =
  check_close 1e-12 "explicit"
    (2. *. (exp (6. *. (2.5 /. 50.) /. 2.) -. 1.))
    (Jq.Bounds.multiclass_bound ~upper:2.5 ~num_buckets:50 ~n:5 ~labels:3);
  check_bool "clamped to 1" true
    (Jq.Bounds.multiclass_bound ~upper:100. ~num_buckets:1 ~n:50 ~labels:5 = 1.);
  Alcotest.check_raises "labels"
    (Invalid_argument "Bounds.multiclass_bound: labels") (fun () ->
      ignore (Jq.Bounds.multiclass_bound ~upper:1. ~num_buckets:10 ~n:3 ~labels:1))

(* ---- Symmetries ------------------------------------------------------------ *)

let test_jq_label_symmetry =
  (* Relabeling yes <-> no swaps alpha for 1 - alpha and leaves BV's JQ
     unchanged. *)
  qtest "JQ(J, BV, alpha) = JQ(J, BV, 1 - alpha)"
    QCheck2.Gen.(pair (jury_gen quality_gen) alpha_gen)
    (fun (qs, alpha) ->
      Float.abs
        (Jq.Exact.jq_optimal ~alpha ~qualities:qs
        -. Jq.Exact.jq_optimal ~alpha:(1. -. alpha) ~qualities:qs)
      < 1e-9)

let test_bucket_permutation_invariance =
  qtest "bucket estimate is invariant under jury permutation"
    (jury_gen ~max:10 reliable_gen) (fun qs ->
      let reversed = Array.of_list (List.rev (Array.to_list qs)) in
      Float.abs (Jq.Bucket.estimate qs -. Jq.Bucket.estimate reversed) < 1e-9)

let test_exact_permutation_invariance =
  qtest "exact JQ is invariant under jury permutation"
    (jury_gen ~max:8 quality_gen) (fun qs ->
      let reversed = Array.of_list (List.rev (Array.to_list qs)) in
      Float.abs
        (Jq.Exact.jq_optimal ~alpha:0.4 ~qualities:qs
        -. Jq.Exact.jq_optimal ~alpha:0.4 ~qualities:reversed)
      < 1e-9)

(* ---- Incremental (anytime) JQ --------------------------------------------- *)

let test_incremental_tracks_exact =
  qtest ~count:200 "anytime estimate within both error bounds of exact"
    (jury_gen ~max:8 quality_gen) (fun qs ->
      let t = Jq.Incremental.create ~num_buckets:400 () in
      Array.iter (Jq.Incremental.add_worker t) qs;
      let exact = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      let est = Jq.Incremental.value t in
      est <= exact +. 1e-9 && exact -. est <= Jq.Incremental.error_bound t +. 1e-9)

let test_incremental_matches_batch_on_fig2 () =
  let t = Jq.Incremental.create ~num_buckets:2000 () in
  Array.iter (Jq.Incremental.add_worker t) fig2_qualities;
  check_close 1e-3 "figure-2 value" 0.9 (Jq.Incremental.value t);
  check_int "size" 3 (Jq.Incremental.size t)

let test_incremental_order_invariant =
  qtest ~count:100 "arrival order does not change the estimate"
    (jury_gen ~max:7 quality_gen) (fun qs ->
      let run order =
        let t = Jq.Incremental.create () in
        Array.iter (Jq.Incremental.add_worker t) order;
        Jq.Incremental.value t
      in
      let reversed = Array.of_list (List.rev (Array.to_list qs)) in
      Float.abs (run qs -. run reversed) < 1e-9)

let test_incremental_monotone_in_size =
  (* Lemma 1 makes the *true* JQ monotone in jury size; the anytime
     estimate may dip by at most its bucketization error bound. *)
  qtest ~count:100 "anytime JQ monotone up to the error bound"
    (jury_gen ~max:8 reliable_gen) (fun qs ->
      let t = Jq.Incremental.create () in
      let ok = ref true in
      let previous = ref (Jq.Incremental.value t) in
      Array.iter
        (fun q ->
          Jq.Incremental.add_worker t q;
          let v = Jq.Incremental.value t in
          if v < !previous -. Jq.Incremental.error_bound t -. 1e-9 then ok := false;
          previous := v)
        qs;
      !ok)

let test_incremental_edges () =
  let t = Jq.Incremental.create ~alpha:0.3 () in
  check_close 1e-12 "empty follows prior" 0.7 (Jq.Incremental.value t);
  Jq.Incremental.add_worker t 1.0;
  check_close 1e-12 "certain worker" 1. (Jq.Incremental.value t);
  Jq.Incremental.add_worker t 0.6;
  check_close 1e-12 "stays certain" 1. (Jq.Incremental.value t);
  let coins = Jq.Incremental.create () in
  Jq.Incremental.add_worker coins 0.5;
  Jq.Incremental.add_worker coins 0.5;
  check_close 1e-12 "all coins" 0.5 (Jq.Incremental.value coins);
  Alcotest.check_raises "quality" (Invalid_argument "Incremental.add_worker: quality outside [0, 1]")
    (fun () -> Jq.Incremental.add_worker coins 1.5)

(* ---- Incremental removal --------------------------------------------------- *)

(* A random interleaving of adds and removes, ending with the [kept] subset:
   add everything, then (in a data-dependent order) remove the rest. *)
let interleave t qs ~keep =
  Array.iteri
    (fun i q ->
      Jq.Incremental.add_worker t q;
      (* Remove an earlier non-kept worker every other step, so removals
         happen mid-stream rather than only at the end. *)
      if i mod 2 = 1 then
        for j = i - 1 downto max 0 (i - 2) do
          if not keep.(j) && qs.(j) >= 0. then begin
            Jq.Incremental.remove_worker t qs.(j);
            qs.(j) <- -1.
          end
        done)
    qs;
  Array.iteri
    (fun j q -> if (not keep.(j)) && q >= 0. then Jq.Incremental.remove_worker t q)
    (Array.copy qs)

let test_incremental_interleaved_vs_exact =
  qtest ~count:200 "value after add/remove interleaving brackets the exact JQ"
    QCheck2.Gen.(triple (jury_gen ~max:8 quality_gen) (array_size (return 8) bool) alpha_gen)
    (fun (qs, keep_all, alpha) ->
      let n = Array.length qs in
      let keep = Array.sub keep_all 0 n in
      (* Keep at least one worker so the surviving jury is non-empty. *)
      keep.(0) <- true;
      let t = Jq.Incremental.create ~num_buckets:400 ~alpha () in
      let scratch = Array.copy qs in
      interleave t scratch ~keep;
      let survivors =
        Array.of_list
          (List.filteri (fun j _ -> keep.(j)) (Array.to_list qs))
      in
      let exact = Jq.Exact.jq_optimal ~alpha ~qualities:survivors in
      let est = Jq.Incremental.value t in
      Jq.Incremental.size t = Array.length survivors
      && est <= exact +. 1e-9
      && exact -. est <= Jq.Incremental.error_bound t +. 1e-9)

let test_incremental_interleaved_vs_bucket =
  qtest ~count:200 "value after add/remove interleaving near Bucket.estimate"
    QCheck2.Gen.(triple (jury_gen ~max:8 quality_gen) (array_size (return 8) bool) alpha_gen)
    (fun (qs, keep_all, alpha) ->
      let n = Array.length qs in
      let keep = Array.sub keep_all 0 n in
      keep.(0) <- true;
      let t = Jq.Incremental.create ~alpha () in
      let scratch = Array.copy qs in
      interleave t scratch ~keep;
      let survivors =
        Array.of_list
          (List.filteri (fun j _ -> keep.(j)) (Array.to_list qs))
      in
      let stats = Jq.Bucket.estimate_stats ~alpha survivors in
      let est = Jq.Incremental.value t in
      (* Both are lower estimates of the same JQ, so they agree within the
         sum of their §4.4 error bounds. *)
      Float.abs (est -. stats.Jq.Bucket.value)
      <= Jq.Incremental.error_bound t +. stats.Jq.Bucket.error_bound +. 1e-9)

let test_incremental_add_remove_reverts =
  qtest ~count:200 "adding then removing a worker restores the value"
    QCheck2.Gen.(pair (jury_gen ~max:6 quality_gen) quality_gen)
    (fun (qs, extra) ->
      let t = Jq.Incremental.create () in
      Array.iter (Jq.Incremental.add_worker t) qs;
      let before = Jq.Incremental.value t in
      Jq.Incremental.add_worker t extra;
      Jq.Incremental.remove_worker t extra;
      Float.abs (Jq.Incremental.value t -. before) < 1e-9
      && Jq.Incremental.size t = Array.length qs)

let test_incremental_remove_validation () =
  let t = Jq.Incremental.create () in
  Jq.Incremental.add_worker t 0.8;
  let absent = Invalid_argument "Incremental.remove_worker: worker not in jury" in
  Alcotest.check_raises "never added" absent (fun () ->
      Jq.Incremental.remove_worker t 0.7);
  Alcotest.check_raises "no coin present" absent (fun () ->
      Jq.Incremental.remove_worker t 0.5);
  Alcotest.check_raises "no certain present" absent (fun () ->
      Jq.Incremental.remove_worker t 1.0);
  (* q and 1 − q are the same member after reinterpretation. *)
  Jq.Incremental.remove_worker t 0.2;
  check_int "empty again" 0 (Jq.Incremental.size t);
  Alcotest.check_raises "range" (Invalid_argument "Incremental.remove_worker: quality outside [0, 1]")
    (fun () -> Jq.Incremental.remove_worker t 1.5)

let test_incremental_certain_removal () =
  let t = Jq.Incremental.create () in
  Jq.Incremental.add_worker t 0.8;
  Jq.Incremental.add_worker t 1.0;
  check_close 1e-12 "certain regime" 1. (Jq.Incremental.value t);
  Jq.Incremental.add_worker t 0.7;
  Jq.Incremental.remove_worker t 1.0;
  (* Leaving the certain regime must rebuild to {0.8, 0.7}. *)
  let fresh = Jq.Incremental.create () in
  Jq.Incremental.add_worker fresh 0.8;
  Jq.Incremental.add_worker fresh 0.7;
  check_close 1e-12 "rebuilt after certain removal" (Jq.Incremental.value fresh)
    (Jq.Incremental.value t);
  check_int "size" 2 (Jq.Incremental.size t)

let test_incremental_periodic_rebuild () =
  let t = Jq.Incremental.create () in
  Jq.Incremental.add_worker t 0.8;
  Jq.Incremental.add_worker t 0.65;
  for _ = 1 to 600 do
    Jq.Incremental.add_worker t 0.72;
    Jq.Incremental.remove_worker t 0.72
  done;
  let v = Jq.Incremental.value t in
  check_bool "periodic rebuild triggered" true (Jq.Incremental.rebuilds t >= 1);
  let fresh = Jq.Incremental.create () in
  Jq.Incremental.add_worker fresh 0.8;
  Jq.Incremental.add_worker fresh 0.65;
  check_close 1e-9 "value survives the add/remove storm" (Jq.Incremental.value fresh) v

let test_incremental_error_bound_semantics () =
  (* error_bound must be Bounds.additive_bound over exactly the convolved
     logits: prior pseudo-worker counted, coins and certain-regime members
     not. *)
  let upper = Prob.Log_space.logit 0.99 in
  let num_buckets = Jq.Bucket.default_num_buckets in
  let expect t n =
    check_float "bound = additive_bound over convolved logits"
      (Jq.Bounds.additive_bound ~upper ~num_buckets ~n)
      (Jq.Incremental.error_bound t);
    check_int "convolved" n (Jq.Incremental.convolved t)
  in
  let t = Jq.Incremental.create ~alpha:0.7 () in
  expect t 1;                              (* the prior pseudo-worker *)
  Jq.Incremental.add_worker t 0.5;
  expect t 1;                              (* coins are never convolved *)
  check_int "coins" 1 (Jq.Incremental.coins t);
  Jq.Incremental.add_worker t 0.8;
  expect t 2;
  Jq.Incremental.add_worker t 1.0;         (* certain: bound collapses to 0 *)
  check_float "certain bound" 0. (Jq.Incremental.error_bound t);
  Jq.Incremental.remove_worker t 1.0;
  expect t 2;
  Jq.Incremental.remove_worker t 0.8;
  expect t 1;
  let unprior = Jq.Incremental.create ~alpha:0.5 () in
  expect unprior 0;
  check_float "empty unprior bound" 0. (Jq.Incremental.error_bound unprior)

let test_buckets_for_error_clamp () =
  check_bool "denormal input still yields a usable bucket count" true
    (Jq.Bounds.buckets_for_error ~upper:1e-300 ~n:1 ~epsilon:0.5 >= 1);
  check_int "tiny product clamps to 1" 1
    (Jq.Bounds.buckets_for_error ~upper:4.94e-324 ~n:1 ~epsilon:0.9);
  let b = Jq.Bounds.buckets_for_error ~upper:5. ~n:10 ~epsilon:0.01 in
  check_bool "bound met at the returned count" true
    (Jq.Bounds.additive_bound ~upper:5. ~num_buckets:b ~n:10 <= 0.01)

(* ---- Monte-Carlo JQ ------------------------------------------------------- *)

let test_monte_carlo_converges () =
  let rng = Prob.Rng.create 31337 in
  let est = Jq.Mc.jq_bv rng ~trials:100_000 ~alpha:0.5 ~qualities:fig2_qualities in
  check_close 0.01 "MC JQ near 0.9" 0.9 est.Jq.Mc.value;
  let lo, hi = est.Jq.Mc.confidence_99 in
  check_bool "interval covers truth" true (lo <= 0.9 && 0.9 <= hi);
  check_bool "interval inside [0,1]" true (lo >= 0. && hi <= 1.)

let test_monte_carlo_matches_exact =
  qtest ~count:20 "MC estimate within its 99% interval of the exact JQ"
    (jury_gen ~max:6 reliable_gen) (fun qs ->
      let rng = Prob.Rng.create (Hashtbl.hash qs) in
      let exact = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:qs in
      let est = Jq.Mc.jq_bv rng ~trials:20_000 ~alpha:0.5 ~qualities:qs in
      let lo, hi = est.Jq.Mc.confidence_99 in
      lo <= exact && exact <= hi)

let test_monte_carlo_any_strategy () =
  let rng = Prob.Rng.create 7 in
  let est =
    Jq.Mc.jq rng ~trials:100_000 ~strategy:Randomized.coin_flip ~alpha:0.5
      ~qualities:fig2_qualities
  in
  check_close 0.01 "coin JQ 0.5" 0.5 est.Jq.Mc.value

let test_monte_carlo_validation () =
  let rng = Prob.Rng.create 0 in
  Alcotest.check_raises "trials" (Invalid_argument "Mc.jq: trials <= 0") (fun () ->
      ignore (Jq.Mc.jq_bv rng ~trials:0 ~alpha:0.5 ~qualities:[| 0.7 |]));
  Alcotest.check_raises "quality" (Invalid_argument "Mc.jq: quality outside [0, 1]")
    (fun () -> ignore (Jq.Mc.jq_bv rng ~trials:10 ~alpha:0.5 ~qualities:[| 1.5 |]))

let test_monte_carlo_trials_for_halfwidth () =
  let trials = Jq.Mc.trials_for_halfwidth 0.01 in
  check_bool "enough trials" true
    (sqrt (log (2. /. 0.01) /. (2. *. float_of_int trials)) <= 0.01 +. 1e-12);
  Alcotest.check_raises "h" (Invalid_argument "Mc.trials_for_halfwidth: h <= 0")
    (fun () -> ignore (Jq.Mc.trials_for_halfwidth 0.))

let () =
  Alcotest.run "jq"
    [
      ( "exact",
        [
          Alcotest.test_case "likelihoods" `Quick test_exact_likelihoods;
          Alcotest.test_case "figure 2 values" `Quick test_exact_fig2;
          Alcotest.test_case "constant and coin" `Quick test_exact_constant;
          test_exact_optimal_equals_bv;
          test_exact_bounds;
          Alcotest.test_case "jury cap" `Quick test_exact_too_large;
          Alcotest.test_case "table totals" `Quick test_exact_table_totals;
        ] );
      ( "optimality",
        [ test_bv_optimality; test_bv_beats_random_weighted ] );
      ( "mv_closed",
        [
          test_mv_closed_matches_exact;
          test_half_closed_matches_exact;
          test_tie_coin_matches_exact;
          Alcotest.test_case "figure 2" `Quick test_mv_closed_fig2;
          Alcotest.test_case "empty juries" `Quick test_mv_closed_empty;
        ] );
      ( "bucket",
        [
          Alcotest.test_case "figure 2 estimate" `Quick test_bucket_fig2;
          test_bucket_never_exceeds_exact;
          test_bucket_error_bound;
          test_bucket_converges;
          test_bucket_pruning_invariant;
          Alcotest.test_case "pruning invariant (large)" `Quick
            test_bucket_pruning_invariant_large;
          test_bucket_low_quality_reinterpretation;
          test_bucket_alpha_matches_exact;
          Alcotest.test_case "all coins" `Quick test_bucket_all_coins;
          Alcotest.test_case "certain cases" `Quick test_bucket_certain_worker;
          Alcotest.test_case "high-quality shortcut" `Quick test_bucket_shortcut;
          Alcotest.test_case "stats instrumentation" `Quick
            test_bucket_stats_instrumentation;
          Alcotest.test_case "validation" `Quick test_bucket_validation;
          test_bucketize_nearest;
          test_bucket_more_buckets_tighter;
        ] );
      ( "kernels",
        [
          test_flat_matches_hashtbl;
          test_flat_hashtbl_underestimate;
          test_flat_pruning_agreement;
          test_workspace_reuse_deterministic;
          test_mc_flat_matches_hashtbl;
          test_mc_flat_binary_matches_hashtbl;
        ] );
      ( "monotonicity",
        [ test_lemma1_jury_size; test_lemma2_quality ] );
      ( "prior",
        [
          test_theorem3_exact;
          Alcotest.test_case "fold" `Quick test_prior_fold;
          test_coin_worker_harmless;
        ] );
      ( "reinterpret",
        [
          Alcotest.test_case "canonicalize" `Quick test_reinterpret_canonicalize;
          test_reinterpret_preserves_bv_jq;
          test_reinterpret_helps_mv;
          Alcotest.test_case "apply flips" `Quick test_apply_flips;
        ] );
      ( "prune",
        [
          Alcotest.test_case "aggregate" `Quick test_aggregate_buckets;
          Alcotest.test_case "rule" `Quick test_prune_rule;
          Alcotest.test_case "tuple ranges (degenerate)" `Quick
            test_tuple_ranges_degenerate;
          Alcotest.test_case "tuple ranges (single worker)" `Quick
            test_tuple_ranges_single_worker;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "formula" `Quick test_bounds_formula;
          test_bounds_inverse;
          Alcotest.test_case "validation" `Quick test_bounds_validation;
          Alcotest.test_case "multiclass bound" `Quick test_multiclass_bound;
        ] );
      ( "multiclass",
        [
          test_mc_exact_bounds;
          test_mc_bv_optimal;
          test_mc_binary_consistency;
          test_mc_estimate_tracks_exact;
          Alcotest.test_case "H decomposition" `Quick test_mc_h_decomposition;
          Alcotest.test_case "degenerate prior" `Quick test_mc_degenerate_prior;
          Alcotest.test_case "validation" `Quick test_mc_h_validation;
          test_mc_truncation_underestimates;
          test_mc_error_bound;
          test_mc_workspace_reuse_deterministic;
          Alcotest.test_case "warm eval allocation" `Quick
            test_mc_warm_eval_allocation;
          Alcotest.test_case "NaN prior rejected" `Quick test_mc_nan_prior;
        ] );
      ( "symmetries",
        [
          test_jq_label_symmetry;
          test_bucket_permutation_invariance;
          test_exact_permutation_invariance;
        ] );
      ( "incremental",
        [
          test_incremental_tracks_exact;
          Alcotest.test_case "figure-2 value" `Quick test_incremental_matches_batch_on_fig2;
          test_incremental_order_invariant;
          test_incremental_monotone_in_size;
          Alcotest.test_case "edges" `Quick test_incremental_edges;
          test_incremental_interleaved_vs_exact;
          test_incremental_interleaved_vs_bucket;
          test_incremental_add_remove_reverts;
          Alcotest.test_case "remove validation" `Quick test_incremental_remove_validation;
          Alcotest.test_case "certain removal" `Quick test_incremental_certain_removal;
          Alcotest.test_case "periodic rebuild" `Quick test_incremental_periodic_rebuild;
          Alcotest.test_case "error-bound semantics" `Quick
            test_incremental_error_bound_semantics;
          Alcotest.test_case "buckets_for_error clamp" `Quick test_buckets_for_error_clamp;
        ] );
      ( "monte_carlo",
        [
          Alcotest.test_case "converges" `Slow test_monte_carlo_converges;
          test_monte_carlo_matches_exact;
          Alcotest.test_case "any strategy" `Slow test_monte_carlo_any_strategy;
          Alcotest.test_case "validation" `Quick test_monte_carlo_validation;
          Alcotest.test_case "trials for halfwidth" `Quick
            test_monte_carlo_trials_for_halfwidth;
        ] );
    ]
