(* Tests for lib/fleet: the price-based shared-pool allocator.

   The load-bearing properties are the allocator's hard guarantees — no
   worker on two juries, budgets charged true costs, the price-based
   result never below the independent-greedy baseline on a full
   re-allocation — plus exact optimality on instances small enough to
   enumerate.  Randomized submit/release interleavings check that the
   delta path preserves the same invariants the full path establishes. *)

let qtest ?(count = 50) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ?print ~name gen prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* Light solver settings: tests exercise structure, not anneal quality. *)
let test_config =
  { Fleet.Allocator.default_config with restarts = 1; max_rounds = 3 }

let pool_of rows =
  Engine.Pool.of_workers
    (Workers.Pool.of_list
       (List.mapi
          (fun id (q, c) -> Workers.Worker.make ~id ~quality:q ~cost:c ())
          rows))

let spec ?(tier = 0) ?(target = 0.) ~id ~alpha ~budget () =
  Fleet.Spec.make ~tier ~target ~id ~prior:[| alpha; 1. -. alpha |] ~budget ()

(* ---- generators ----------------------------------------------------- *)

let rows_gen lo hi =
  QCheck2.Gen.(
    int_range lo hi >>= fun n ->
    list_size (return n) (pair (float_range 0.55 0.95) (float_range 0.5 3.)))

let spec_params_gen =
  QCheck2.Gen.(
    float_range 0.2 0.8 >>= fun alpha ->
    float_range 0. 8. >>= fun budget ->
    int_range 0 2 >>= fun tier ->
    oneofl [ 0.; 0.7; 0.9 ] >>= fun target ->
    return (alpha, budget, tier, target))

let specs_of params =
  List.mapi
    (fun i (alpha, budget, tier, target) ->
      Fleet.Spec.make ~tier ~target
        ~id:(Printf.sprintf "t%d" i)
        ~prior:[| alpha; 1. -. alpha |]
        ~budget ())
    params

let instance_gen ~workers:(wlo, whi) ~tasks:(tlo, thi) =
  QCheck2.Gen.(
    rows_gen wlo whi >>= fun rows ->
    int_range tlo thi >>= fun k ->
    list_size (return k) spec_params_gen >>= fun params ->
    return (rows, params))

(* Submit everything, then release a random subset in a random-ish order
   (drop every [step]-th resident) — the delta-path interleaving. *)
let ops_gen =
  QCheck2.Gen.(
    instance_gen ~workers:(4, 10) ~tasks:(2, 8) >>= fun inst ->
    int_range 2 4 >>= fun step ->
    bool >>= fun decided ->
    return (inst, step, decided))

(* ---- invariants ------------------------------------------------------ *)

let assert_invariants t =
  let pool = Fleet.Allocator.pool t in
  let n = Engine.Pool.size pool in
  let seen = Array.make (Int.max n 1) false in
  if Fleet.Allocator.violations t <> 0 then failwith "violations <> 0";
  List.iter
    (fun (a : Fleet.Allocator.assignment) ->
      let cost = ref 0. in
      let last = ref (-1) in
      List.iter
        (fun p ->
          if p < 0 || p >= n then failwith "position out of range";
          if p <= !last then failwith "jury not ascending";
          last := p;
          if seen.(p) then failwith "worker on two juries";
          seen.(p) <- true;
          cost := !cost +. Engine.Pool.cost pool p)
        a.jury;
      if Float.abs (!cost -. a.cost) > 1e-9 then failwith "cost mismatch";
      (match Fleet.Allocator.find t ~id:a.id with
      | Some b when b = a -> ()
      | _ -> failwith "find disagrees with assignments"))
    (Fleet.Allocator.assignments t);
  true

let budgets_respected t specs =
  List.for_all
    (fun s ->
      match Fleet.Allocator.find t ~id:(Fleet.Spec.id s) with
      | None -> false
      | Some a -> a.cost <= Fleet.Spec.budget s +. 1e-9)
    specs

(* ---- unit tests ------------------------------------------------------ *)

let test_spec_validation () =
  let ok = spec ~id:"a" ~alpha:0.3 ~budget:4. () in
  check_int "tier default" 0 (Fleet.Spec.tier ok);
  List.iter
    (fun f -> expect_invalid "rejected" (fun () -> ignore (f ())))
    [
      (fun () -> spec ~id:"" ~alpha:0.3 ~budget:4. ());
      (fun () -> spec ~id:"a b" ~alpha:0.3 ~budget:4. ());
      (fun () -> spec ~id:"a=b" ~alpha:0.3 ~budget:4. ());
      (fun () -> spec ~id:"a" ~alpha:0.3 ~budget:(-1.) ());
      (fun () -> spec ~id:"a" ~alpha:0.3 ~budget:Float.infinity ());
      (fun () -> spec ~id:"a" ~alpha:0.3 ~budget:4. ~tier:(-1) ());
      (fun () -> spec ~id:"a" ~alpha:0.3 ~budget:4. ~target:1.5 ());
      (fun () ->
        Fleet.Spec.make ~id:"a" ~prior:[| 0.6; 0.6 |] ~budget:4. ());
    ]

let test_spec_signature () =
  let a = spec ~id:"a" ~alpha:0.3 ~budget:4. () in
  let b = spec ~id:"b" ~alpha:0.3 ~budget:4. () in
  let c = spec ~id:"c" ~alpha:0.3 ~budget:5. () in
  check_bool "id excluded" true
    (Fleet.Spec.signature a = Fleet.Spec.signature b);
  check_bool "budget included" false
    (Fleet.Spec.signature a = Fleet.Spec.signature c);
  let t1 = spec ~id:"z" ~alpha:0.3 ~budget:4. ~tier:1 () in
  check_bool "tier included" false
    (Fleet.Spec.signature a = Fleet.Spec.signature t1);
  check_bool "priority: tier before id" true
    (Fleet.Spec.compare_priority a t1 < 0
    && Fleet.Spec.compare_priority a b < 0)

let test_lifecycle () =
  let pool = pool_of [ (0.9, 1.); (0.8, 1.); (0.7, 1.); (0.6, 1.) ] in
  let t = Fleet.Allocator.create ~config:test_config ~pool ~version:1 () in
  let a = Fleet.Allocator.submit t (spec ~id:"a" ~alpha:0.5 ~budget:2. ()) in
  check_bool "a got a jury" true (a.jury <> []);
  check_int "resident" 1 (Fleet.Allocator.task_count t);
  expect_invalid "duplicate id" (fun () ->
      ignore (Fleet.Allocator.submit t (spec ~id:"a" ~alpha:0.5 ~budget:2. ())));
  expect_invalid "label mismatch" (fun () ->
      ignore
        (Fleet.Allocator.submit t
           (Fleet.Spec.make ~id:"m" ~prior:[| 0.2; 0.3; 0.5 |] ~budget:2. ())));
  check_bool "still consistent after raises" true (assert_invariants t);
  (match Fleet.Allocator.release t ~id:"a" ~decided:true with
  | Some final -> check_bool "final jury returned" true (final.jury = a.jury)
  | None -> Alcotest.fail "release lost the task");
  check_int "gone" 0 (Fleet.Allocator.task_count t);
  check_bool "unknown release" true
    (Fleet.Allocator.release t ~id:"a" ~decided:false = None);
  let st = Fleet.Allocator.stats t in
  check_int "submits" 1 st.submits;
  check_int "releases" 1 st.releases;
  check_int "decides" 1 st.decides

let test_submit_all_order () =
  let pool = pool_of (List.init 6 (fun i -> (0.8, 1. +. float_of_int i))) in
  let t = Fleet.Allocator.create ~config:test_config ~pool ~version:1 () in
  let specs =
    List.init 5 (fun i ->
        spec ~tier:(i mod 2)
          ~id:(Printf.sprintf "s%d" i)
          ~alpha:0.4 ~budget:3. ())
  in
  let out = Fleet.Allocator.submit_all t specs in
  Alcotest.(check (list string))
    "input order preserved"
    (List.map Fleet.Spec.id specs)
    (List.map (fun (a : Fleet.Allocator.assignment) -> a.id) out);
  check_bool "consistent" true (assert_invariants t)

let test_tier_priority () =
  (* One good worker, two tasks that both want it: the tier-0 task must
     hold it — the commit pass (and the exact route) break contention in
     priority order, and tier weights are geometric. *)
  let pool = pool_of [ (0.9, 1.) ] in
  let t = Fleet.Allocator.create ~config:test_config ~pool ~version:1 () in
  ignore
    (Fleet.Allocator.submit_all t
       [
         spec ~id:"low" ~alpha:0.5 ~budget:2. ~tier:2 ();
         spec ~id:"high" ~alpha:0.5 ~budget:2. ~tier:0 ();
       ]);
  (match Fleet.Allocator.find t ~id:"high" with
  | Some a -> check_bool "tier 0 holds the worker" true (a.jury = [ 0 ])
  | None -> Alcotest.fail "high missing");
  match Fleet.Allocator.find t ~id:"low" with
  | Some a -> check_bool "tier 2 starved" true (a.jury = [])
  | None -> Alcotest.fail "low missing"

let test_release_reallocates () =
  (* A tier-0 hog whose budget covers the whole pool: the commit pass
     grants it everything, so the tier-2 task is starved (7 workers,
     above the exact-route cap, so no exhaustive redistribution).
     Releasing the hog must hand workers to the starved survivor via
     the delta path. *)
  let pool = pool_of (List.init 7 (fun _ -> (0.8, 1.))) in
  let t = Fleet.Allocator.create ~config:test_config ~pool ~version:1 () in
  ignore
    (Fleet.Allocator.submit t
       (spec ~id:"hog" ~alpha:0.5 ~budget:20. ~tier:0 ()));
  let starved =
    Fleet.Allocator.submit t
      (spec ~id:"later" ~alpha:0.5 ~budget:20. ~tier:2 ())
  in
  check_bool "pool exhausted" true (starved.jury = []);
  ignore (Fleet.Allocator.release t ~id:"hog" ~decided:true);
  (match Fleet.Allocator.find t ~id:"later" with
  | Some a -> check_bool "freed workers reassigned" true (a.jury <> [])
  | None -> Alcotest.fail "later missing");
  check_bool "consistent" true (assert_invariants t)

let test_set_pool_resync () =
  let pool2 = pool_of [ (0.9, 1.); (0.8, 1.) ] in
  let t = Fleet.Allocator.create ~config:test_config ~pool:pool2 ~version:1 () in
  ignore (Fleet.Allocator.submit t (spec ~id:"a" ~alpha:0.5 ~budget:4. ()));
  (* Same version: no-op. *)
  Fleet.Allocator.set_pool t ~pool:pool2 ~version:1;
  check_int "no resync on same version" 0 (Fleet.Allocator.stats t).resyncs;
  (* New version, 3-label pool: the binary task no longer fits and is
     dropped; the allocator survives and counts the resync. *)
  let pool3 =
    Engine.Pool.of_confusions
      [|
        Workers.Confusion.make ~id:0
          ~matrix:
            [|
              [| 0.8; 0.1; 0.1 |]; [| 0.1; 0.8; 0.1 |]; [| 0.1; 0.1; 0.8 |];
            |]
          ~cost:1. ();
      |]
  in
  Fleet.Allocator.set_pool t ~pool:pool3 ~version:2;
  check_int "resynced" 1 (Fleet.Allocator.stats t).resyncs;
  check_int "mismatched task dropped" 0 (Fleet.Allocator.task_count t);
  check_int "version adopted" 2 (Fleet.Allocator.pool_version t);
  check_bool "consistent" true (assert_invariants t)

(* ---- properties ------------------------------------------------------ *)

let print_instance (rows, params) =
  Printf.sprintf "%d workers %s / %d tasks %s" (List.length rows)
    (String.concat ";"
       (List.map (fun (q, c) -> Printf.sprintf "(%.2f,%.2f)" q c) rows))
    (List.length params)
    (String.concat ";"
       (List.map
          (fun (a, b, t, g) -> Printf.sprintf "(%.2f,%.2f,%d,%.1f)" a b t g)
          params))

let fleet_props =
  [
    qtest ~count:60 ~print:print_instance
      "submit_all: non-overlap, budgets, exact costs"
      (instance_gen ~workers:(4, 12) ~tasks:(2, 10))
      (fun (rows, params) ->
        let specs = specs_of params in
        let t =
          Fleet.Allocator.create ~config:test_config ~pool:(pool_of rows)
            ~version:1 ()
        in
        ignore (Fleet.Allocator.submit_all t specs);
        assert_invariants t && budgets_respected t specs);
    qtest ~count:40
      ~print:(fun ((inst, step, decided)) ->
        Printf.sprintf "%s step=%d decided=%b" (print_instance inst) step
          decided)
      "submit/release interleaving keeps every invariant" ops_gen
      (fun ((rows, params), step, decided) ->
        let specs = specs_of params in
        let t =
          Fleet.Allocator.create ~config:test_config ~pool:(pool_of rows)
            ~version:1 ()
        in
        List.iter (fun s -> ignore (Fleet.Allocator.submit t s)) specs;
        let ok = ref (assert_invariants t) in
        List.iteri
          (fun i s ->
            if i mod step = 0 then begin
              (match
                 Fleet.Allocator.release t ~id:(Fleet.Spec.id s) ~decided
               with
              | Some _ -> ()
              | None -> ok := false);
              ok := !ok && assert_invariants t
            end)
          specs;
        let survivors =
          List.filteri (fun i _ -> i mod step <> 0) specs
        in
        !ok && budgets_respected t survivors);
    qtest ~count:40 ~print:print_instance
      "reallocate: price-based >= independent greedy baseline"
      (instance_gen ~workers:(4, 12) ~tasks:(2, 8))
      (fun (rows, params) ->
        let t =
          Fleet.Allocator.create ~config:test_config ~pool:(pool_of rows)
            ~version:1 ()
        in
        ignore (Fleet.Allocator.submit_all t (specs_of params));
        Fleet.Allocator.reallocate t;
        Fleet.Allocator.aggregate t
        >= Fleet.Allocator.baseline_aggregate t -. 1e-9
        && assert_invariants t);
    qtest ~count:30 ~print:print_instance
      "tiny instances solved exactly (= exhaustive enumeration)"
      (instance_gen ~workers:(2, 6) ~tasks:(1, 3))
      (fun (rows, params) ->
        let pool = pool_of rows in
        let specs = specs_of params in
        let t =
          Fleet.Allocator.create ~config:test_config ~pool ~version:1 ()
        in
        ignore (Fleet.Allocator.submit_all t specs);
        let ctx =
          Fleet.Inner.make_ctx ~num_buckets:test_config.num_buckets pool
        in
        let best =
          Fleet.Inner.aggregate ~dev_weight:test_config.dev_weight
            (Fleet.Exhaustive.allocate ~ctx
               ~dev_weight:test_config.dev_weight specs)
        in
        Float.abs (Fleet.Allocator.aggregate t -. best) <= 1e-9);
    qtest ~count:30 ~print:print_instance
      "baseline itself respects non-overlap and budgets"
      (instance_gen ~workers:(4, 10) ~tasks:(2, 8))
      (fun (rows, params) ->
        let pool = pool_of rows in
        let specs = specs_of params in
        let ctx = Fleet.Inner.make_ctx pool in
        let out =
          Fleet.Baseline.allocate ~ctx ~dev_weight:0.5 specs
        in
        let n = Engine.Pool.size pool in
        let seen = Array.make n false in
        List.for_all
          (fun (a : Fleet.Inner.assignment) ->
            List.for_all
              (fun p ->
                let fresh = not seen.(p) in
                seen.(p) <- true;
                fresh)
              a.jury
            && Fleet.Inner.jury_cost ctx a.jury
               <= Fleet.Spec.budget a.spec +. 1e-9)
          out);
  ]

(* ---- shared-signature economy ---------------------------------------- *)

let test_signature_sharing () =
  (* 40 identical tasks: the batch solve must run far fewer inner solves
     than tasks — one per distinct signature per round, the rest served
     by the proposal cache. *)
  let pool = pool_of (List.init 12 (fun i -> (0.85, 1. +. (0.1 *. float_of_int i)))) in
  let t = Fleet.Allocator.create ~config:test_config ~pool ~version:1 () in
  let specs =
    List.init 40 (fun i ->
        spec ~id:(Printf.sprintf "cl%d" i) ~alpha:0.5 ~budget:3. ())
  in
  ignore (Fleet.Allocator.submit_all t specs);
  let st = Fleet.Allocator.stats t in
  check_bool "inner solves shared across the clone batch" true
    (st.inner_solves < 40);
  check_bool "consistent" true (assert_invariants t)

let () =
  Alcotest.run "fleet"
    [
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "signature" `Quick test_spec_signature;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "submit_all order" `Quick test_submit_all_order;
          Alcotest.test_case "tier priority" `Quick test_tier_priority;
          Alcotest.test_case "release reallocates" `Quick
            test_release_reallocates;
          Alcotest.test_case "set_pool resync" `Quick test_set_pool_resync;
          Alcotest.test_case "signature sharing" `Quick
            test_signature_sharing;
        ] );
      ("properties", fleet_props);
    ]
