(* End-to-end tests of the Optjs facade: JQ computation, jury selection,
   budget-quality tables, aggregation, and a full pipeline consistency
   check (select -> simulate -> aggregate -> accuracy tracks predicted JQ). *)

open Voting

let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fig1 = Workers.Generator.figure1_pool ()

let pool_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun n ->
    array_size (return n) (pair (float_range 0.5 0.99) (float_range 0.05 2.))
    >>= fun specs ->
    return
      (Workers.Pool.of_list
         (List.mapi
            (fun id (q, c) -> Workers.Worker.make ~id ~quality:q ~cost:c ())
            (Array.to_list specs))))

let test_jury_quality_matches_exact =
  qtest "facade bucket JQ tracks exact JQ" pool_gen (fun pool ->
      let config = { Optjs.default_config with num_buckets = 2000 } in
      Float.abs
        (Optjs.jury_quality ~config ~alpha:0.5 pool
        -. Optjs.jury_quality_exact ~alpha:0.5 pool)
      < 0.01)

let test_jury_quality_empty () =
  let empty = Workers.Pool.of_list [] in
  check_close 1e-12 "empty follows prior" 0.7 (Optjs.jury_quality ~alpha:0.3 empty);
  check_close 1e-12 "exact too" 0.7 (Optjs.jury_quality_exact ~alpha:0.3 empty)

let test_jury_quality_of_strategy () =
  let jury = Workers.Pool.take 3 fig1 in
  let bv = Optjs.jury_quality_of Bayesian.strategy ~alpha:0.5 jury in
  let mv = Optjs.jury_quality_of Classic.majority ~alpha:0.5 jury in
  check_bool "BV >= MV" true (bv >= mv -. 1e-9)

let test_select_feasible =
  qtest ~count:60 "selected jury is feasible"
    QCheck2.Gen.(pair pool_gen (float_range 0. 6.))
    (fun (pool, budget) ->
      let r = Optjs.select_jury ~rng:(Prob.Rng.create 1) ~alpha:0.5 ~budget pool in
      Jsp.Budget.feasible ~budget r.Jsp.Solver.jury)

let test_select_near_exact =
  qtest ~count:30 "facade selection close to exhaustive optimum"
    QCheck2.Gen.(pair pool_gen (float_range 0.5 4.))
    (fun (pool, budget) ->
      let r = Optjs.select_jury ~rng:(Prob.Rng.create 2) ~alpha:0.5 ~budget pool in
      let star = Optjs.select_jury_exact ~alpha:0.5 ~budget pool in
      star.Jsp.Solver.score -. r.Jsp.Solver.score < 0.02)

let test_select_all_affordable_fast_path () =
  let r = Optjs.select_jury ~rng:(Prob.Rng.create 3) ~alpha:0.5 ~budget:37. fig1 in
  check_int "selects everyone" 7 (Workers.Pool.size r.Jsp.Solver.jury)

let test_budget_quality_table () =
  let rows =
    Optjs.budget_quality_table ~rng:(Prob.Rng.create 4) ~alpha:0.5
      ~budgets:[ 5.; 10.; 15.; 20. ] fig1
  in
  check_int "4 rows" 4 (List.length rows);
  List.iter
    (fun (r : Jsp.Table.row) ->
      check_bool "row feasible" true (r.required <= r.budget +. 1e-9))
    rows;
  (* The facade's annealed table should recover the paper's optimal values
     on this tiny pool. *)
  let expected = [ 0.75; 0.80; 0.845; 0.8695 ] in
  List.iter2
    (fun (r : Jsp.Table.row) q -> check_close 1e-6 "paper quality" q r.quality)
    rows expected

let test_aggregate_is_bv () =
  let qualities = [| 0.9; 0.6; 0.6 |] in
  let v = Vote.voting_of_ints [ 0; 1; 1 ] in
  check_bool "aggregate = BV" true
    (Vote.equal (Optjs.aggregate ~alpha:0.5 ~qualities v) Vote.No);
  let p = Optjs.posterior_no ~alpha:0.5 ~qualities v in
  check_bool "posterior consistent" true (p > 0.5)

(* Full pipeline: select a jury, simulate many tasks, aggregate with BV,
   and confirm realized accuracy matches the predicted JQ. *)
let test_pipeline_consistency () =
  let rng = Prob.Rng.create 55 in
  let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 20 in
  let result = Optjs.select_jury ~rng ~alpha:0.5 ~budget:0.4 pool in
  let jury = result.Jsp.Solver.jury in
  check_bool "nonempty jury" true (Workers.Pool.size jury > 0);
  let qualities = Workers.Pool.qualities jury in
  let trials = 40_000 in
  let correct = ref 0 in
  for _ = 1 to trials do
    let truth = Crowd.Simulate.sample_truth rng ~alpha:0.5 in
    let votes = Crowd.Simulate.voting rng ~truth qualities in
    if Vote.equal (Optjs.aggregate ~alpha:0.5 ~qualities votes) truth then incr correct
  done;
  let accuracy = float_of_int !correct /. float_of_int trials in
  check_close 0.02 "predicted JQ = realized accuracy" result.Jsp.Solver.score accuracy

let test_version () =
  check_bool "semver-ish" true (String.length Optjs.version >= 5)

let () =
  Alcotest.run "optjs"
    [
      ( "jury_quality",
        [
          test_jury_quality_matches_exact;
          Alcotest.test_case "empty" `Quick test_jury_quality_empty;
          Alcotest.test_case "per strategy" `Quick test_jury_quality_of_strategy;
        ] );
      ( "select",
        [
          test_select_feasible;
          test_select_near_exact;
          Alcotest.test_case "all-affordable fast path" `Quick
            test_select_all_affordable_fast_path;
        ] );
      ( "table",
        [ Alcotest.test_case "figure-1 table" `Quick test_budget_quality_table ] );
      ( "aggregate",
        [ Alcotest.test_case "BV decision" `Quick test_aggregate_is_bv ] );
      ( "pipeline",
        [ Alcotest.test_case "select-simulate-aggregate" `Slow test_pipeline_consistency ] );
      ("meta", [ Alcotest.test_case "version" `Quick test_version ]);
    ]
