(* Tests for lib/session: the sequential posterior against the batch
   aggregators, policy determinism, the stopping cascade, and the store's
   three eviction mechanisms. *)

let qtest ?(count = 200) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ?print ~name gen prop)

let check_float = Alcotest.(check (float 1e-9))
let alpha = 0.5

(* ---- generators ----------------------------------------------------- *)

let quality_gen = QCheck2.Gen.float_range 0.2 0.95

let binary_case_gen =
  QCheck2.Gen.(
    int_range 1 7 >>= fun n ->
    list_size (return n) quality_gen >>= fun qs ->
    list_size (return n) (float_range 0.5 3.) >>= fun costs ->
    list_size (return n) (int_range 0 1) >>= fun labels ->
    (* A permutation of the worker indices: the solicitation order. *)
    list_size (return n) (float_range 0. 1.) >>= fun keys ->
    let order =
      List.map fst
        (List.sort
           (fun (_, a) (_, b) -> compare a b)
           (List.mapi (fun i k -> (i, k)) keys))
    in
    return (qs, costs, labels, order))

let matrix_of ~labels d =
  let off = (1. -. d) /. float_of_int (labels - 1) in
  Array.init labels (fun j ->
      Array.init labels (fun v -> if j = v then d else off))

let matrix_case_gen =
  QCheck2.Gen.(
    int_range 3 4 >>= fun l ->
    int_range 1 5 >>= fun n ->
    list_size (return n) (float_range 0.4 0.95) >>= fun diags ->
    list_size (return n) (int_range 0 (l - 1)) >>= fun labels ->
    list_size (return n) (float_range 0. 1.) >>= fun keys ->
    let order =
      List.map fst
        (List.sort
           (fun (_, a) (_, b) -> compare a b)
           (List.mapi (fun i k -> (i, k)) keys))
    in
    return (l, diags, labels, order))

let binary_pool qs costs =
  Engine.Pool.of_workers
    (Workers.Pool.of_list
       (List.mapi
          (fun id (q, c) -> Workers.Worker.make ~id ~quality:q ~cost:c ())
          (List.combine qs costs)))

let matrix_pool ~labels diags =
  Engine.Pool.of_confusions
    (Array.of_list
       (List.mapi
          (fun id d ->
            Workers.Confusion.make ~id ~matrix:(matrix_of ~labels d) ~cost:1. ())
          diags))

(* Feed votes in [order] while the session keeps soliciting; the accepted
   prefix is what the batch aggregators must agree with. *)
let feed session ~order ~labels_of =
  List.iter
    (fun i ->
      match Session.Task.progress session with
      | Session.Task.Soliciting ->
          (match
             Session.Task.vote session ~worker:i ~label:(labels_of i) ~now:0.
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "vote on soliciting session: %s" e)
      | _ -> ())
    order

let create_exn ?policy ?confidence ~pool ~task ~budget () =
  match
    Session.Task.create ?policy ?confidence ~pool ~pool_version:0 ~task ~budget
      ~now:0. ()
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "create: %s" e

(* ---- sequential posterior vs batch aggregation ---------------------- *)

let seq_vs_batch_binary =
  qtest ~count:300 "binary sequential posterior = Optjs.posterior_no"
    binary_case_gen (fun (qs, costs, labels, order) ->
      let pool = binary_pool qs costs in
      let task = Engine.Task.binary ~alpha in
      let session =
        create_exn ~pool ~task ~budget:1e9 ~confidence:1. ()
      in
      let qarr = Array.of_list qs and larr = Array.of_list labels in
      feed session ~order ~labels_of:(fun i -> larr.(i));
      let accepted = Session.Task.votes session in
      let batch_qs =
        Array.of_list (List.map (fun (w, _) -> qarr.(w)) accepted)
      in
      let voting =
        Array.of_list
          (List.map (fun (_, l) -> Voting.Vote.of_int l) accepted)
      in
      let want = Optjs.posterior_no ~alpha ~qualities:batch_qs voting in
      Float.abs ((Session.Task.posterior session).(0) -. want) <= 1e-9)

let seq_vs_batch_matrix =
  qtest ~count:300 "matrix sequential posterior = Multiclass.posterior"
    matrix_case_gen (fun (l, diags, labels, order) ->
      let pool = matrix_pool ~labels:l diags in
      let task =
        Engine.Task.make ~prior:(Array.make l (1. /. float_of_int l))
      in
      let session =
        create_exn ~pool ~task ~budget:1e9 ~confidence:1. ()
      in
      let darr = Array.of_list diags and larr = Array.of_list labels in
      feed session ~order ~labels_of:(fun i -> larr.(i));
      let accepted = Session.Task.votes session in
      let jury =
        Array.of_list
          (List.map
             (fun (w, _) ->
               Workers.Confusion.make ~id:w ~matrix:(matrix_of ~labels:l darr.(w))
                 ~cost:1. ())
             accepted)
      in
      let voting = Array.of_list (List.map snd accepted) in
      let want =
        Voting.Multiclass.posterior
          ~prior:(Engine.Task.prior task)
          ~jury voting
      in
      let got = Session.Task.posterior session in
      Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-9) got want)

(* Two solicitation orders that both accept every vote end at the same
   posterior — the sequential update commutes like the batch product. *)
let order_invariance =
  qtest ~count:300 "vote order does not change the posterior"
    QCheck2.Gen.(pair binary_case_gen (list_size (return 7) (float_range 0. 1.)))
    (fun ((qs, costs, labels, order), keys2) ->
      let n = List.length qs in
      let order2 =
        List.map fst
          (List.sort
             (fun (_, a) (_, b) -> compare a b)
             (List.mapi (fun i k -> (i, k)) (List.filteri (fun i _ -> i < n) keys2)))
      in
      let larr = Array.of_list labels in
      let run order =
        let session =
          create_exn
            ~pool:(binary_pool qs costs)
            ~task:(Engine.Task.binary ~alpha) ~budget:1e9 ~confidence:1. ()
        in
        feed session ~order ~labels_of:(fun i -> larr.(i));
        (Session.Task.votes_seen session, (Session.Task.posterior session).(0))
      in
      let n1, p1 = run order and n2, p2 = run order2 in
      (* Early certification may truncate one order and not the other;
         the invariance claim is about complete replays. *)
      n1 < n || n2 < n || Float.abs (p1 -. p2) <= 1e-9)

(* ---- task state machine --------------------------------------------- *)

let task_tests =
  let pool () = binary_pool [ 0.9; 0.8; 0.7 ] [ 1.; 1.; 1. ] in
  let task = Engine.Task.binary ~alpha in
  [
    Alcotest.test_case "create validates inputs" `Quick (fun () ->
        let bad f = match f with Ok _ -> Alcotest.fail "expected Error" | Error _ -> () in
        bad
          (Session.Task.create ~pool:(pool ()) ~pool_version:0 ~task
             ~budget:(-1.) ~now:0. ());
        bad
          (Session.Task.create ~pool:(pool ()) ~pool_version:0 ~task ~budget:5.
             ~confidence:0.4 ~now:0. ());
        bad
          (Session.Task.create ~pool:(pool ()) ~pool_version:0 ~task ~budget:5.
             ~gain_floor:(-0.1) ~now:0. ());
        bad
          (Session.Task.create ~pool:(pool ())
             ~pool_version:0
             ~task:(Engine.Task.make ~prior:[| 0.4; 0.3; 0.3 |])
             ~budget:5. ~now:0. ()));
    Alcotest.test_case "votes charge budget and refuse duplicates" `Quick
      (fun () ->
        let s = create_exn ~pool:(pool ()) ~task ~budget:10. ~confidence:1. () in
        (match Session.Task.vote s ~worker:0 ~label:0 ~now:0. with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        check_float "spent" 1. (Session.Task.spent s);
        (match Session.Task.vote s ~worker:0 ~label:1 ~now:0. with
        | Ok () -> Alcotest.fail "duplicate vote accepted"
        | Error _ -> ());
        (match Session.Task.vote s ~worker:9 ~label:0 ~now:0. with
        | Ok () -> Alcotest.fail "out-of-range worker accepted"
        | Error _ -> ());
        (match Session.Task.vote s ~worker:1 ~label:2 ~now:0. with
        | Ok () -> Alcotest.fail "out-of-range label accepted"
        | Error _ -> ()));
    Alcotest.test_case "confidence stop reports Confident" `Quick (fun () ->
        let s =
          create_exn ~pool:(pool ()) ~task ~budget:10. ~confidence:0.85 ()
        in
        (match Session.Task.vote s ~worker:0 ~label:0 ~now:0. with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        match Session.Task.progress s with
        | Session.Task.Decided { label = 0; reason = Session.Stopping.Confident; _ }
          ->
            ()
        | _ -> Alcotest.fail "expected a confident 0 decision");
    Alcotest.test_case "exhausting the pool certifies the decision" `Quick
      (fun () ->
        let s = create_exn ~pool:(pool ()) ~task ~budget:10. ~confidence:1. () in
        (* Unanimous evidence; the no-flip certificate fires at or before
           pool exhaustion, so only feed while still soliciting. *)
        List.iter
          (fun w ->
            match Session.Task.progress s with
            | Session.Task.Soliciting -> (
                match Session.Task.vote s ~worker:w ~label:0 ~now:0. with
                | Ok () -> ()
                | Error e -> Alcotest.fail e)
            | _ -> ())
          [ 0; 1; 2 ];
        match Session.Task.progress s with
        | Session.Task.Decided { label = 0; certified = true; _ } -> ()
        | _ ->
            Alcotest.fail
              "a unanimously-voted session must be certified decided");
    Alcotest.test_case "budget exhaustion reports the argmax" `Quick (fun () ->
        let s = create_exn ~pool:(pool ()) ~task ~budget:1. ~confidence:1. () in
        (match Session.Task.advise s ~now:0. with
        | Some _ -> ()
        | None -> Alcotest.fail "advice expected with budget for one vote");
        (match Session.Task.vote s ~worker:1 ~label:1 ~now:0. with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        match Session.Task.progress s with
        | Session.Task.Decided { label = 1; _ } | Session.Task.Exhausted { label = 1; _ }
          ->
            ()
        | _ -> Alcotest.fail "expected terminal argmax 1");
    Alcotest.test_case "decide forces and is idempotent" `Quick (fun () ->
        let s = create_exn ~pool:(pool ()) ~task ~budget:10. ~confidence:1. () in
        Session.Task.decide s ~now:0.;
        (match Session.Task.progress s with
        | Session.Task.Decided { reason = Session.Stopping.Forced; _ } -> ()
        | _ -> Alcotest.fail "expected a forced decision");
        Session.Task.decide s ~now:0.;
        match Session.Task.progress s with
        | Session.Task.Decided { reason = Session.Stopping.Forced; _ } -> ()
        | _ -> Alcotest.fail "decide must be idempotent");
  ]

(* ---- policies -------------------------------------------------------- *)

let policy_tests =
  let pool = binary_pool [ 0.6; 0.9; 0.9 ] [ 1.; 2.; 2. ] in
  let task = Engine.Task.binary ~alpha in
  let posterior = [| 0.5; 0.5 |] in
  let asked = [| false; false; false |] in
  let pick ?(remaining = 100.) policy =
    Session.Policy.pick policy ~task ~pool ~posterior ~asked ~remaining ()
  in
  [
    Alcotest.test_case "cheapest-first picks the lowest cost" `Quick (fun () ->
        match pick Session.Policy.Cheapest_first with
        | Some (0, _) -> ()
        | _ -> Alcotest.fail "expected worker 0");
    Alcotest.test_case "quality-greedy ties break to the lowest index" `Quick
      (fun () ->
        match pick Session.Policy.Quality_greedy with
        | Some (1, _) -> ()
        | _ -> Alcotest.fail "expected worker 1");
    Alcotest.test_case "affordability filters candidates" `Quick (fun () ->
        match pick ~remaining:1.5 Session.Policy.Quality_greedy with
        | Some (0, _) -> ()
        | _ -> Alcotest.fail "only worker 0 is affordable");
    Alcotest.test_case "no affordable candidate yields None" `Quick (fun () ->
        match pick ~remaining:0.5 Session.Policy.Info_gain with
        | None -> ()
        | Some _ -> Alcotest.fail "nothing is affordable");
    Alcotest.test_case "all policies advise deterministically" `Quick (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Session.Policy.to_string p) true
              (pick p = pick p))
          Session.Policy.all);
    Alcotest.test_case "policy tokens round-trip" `Quick (fun () ->
        List.iter
          (fun p ->
            match Session.Policy.of_string (Session.Policy.to_string p) with
            | Some q ->
                Alcotest.(check bool) (Session.Policy.to_string p) true (p = q)
            | None -> Alcotest.fail "token did not parse")
          Session.Policy.all);
  ]

(* ---- batch advice ---------------------------------------------------- *)

let batch_advice_tests =
  let pool = binary_pool [ 0.6; 0.9; 0.8; 0.7 ] [ 1.; 1.; 1.; 1. ] in
  let task = Engine.Task.binary ~alpha in
  let posterior = [| 0.5; 0.5 |] in
  let pick_k ?(remaining = 100.) ?(asked = Array.make 4 false) policy k =
    Session.Policy.pick_k policy ~task ~pool ~posterior ~asked ~remaining ~k ()
  in
  [
    Alcotest.test_case "head of pick_k is pick" `Quick (fun () ->
        List.iter
          (fun p ->
            let head =
              match pick_k p 3 with (i, _) :: _ -> Some i | [] -> None
            in
            let single =
              Session.Policy.pick p ~task ~pool ~posterior
                ~asked:(Array.make 4 false) ~remaining:100. ()
            in
            Alcotest.(check bool)
              (Session.Policy.to_string p) true
              (head = Option.map fst single))
          Session.Policy.all);
    Alcotest.test_case "quality-greedy ranks best first" `Quick (fun () ->
        Alcotest.(check (list int))
          "order" [ 1; 2; 3 ]
          (List.map fst (pick_k Session.Policy.Quality_greedy 3)));
    Alcotest.test_case "k beyond the frontier clamps" `Quick (fun () ->
        Alcotest.(check int)
          "all four" 4
          (List.length (pick_k Session.Policy.Quality_greedy 99));
        let asked = [| false; true; true; false |] in
        Alcotest.(check (list int))
          "asked workers excluded" [ 0; 3 ]
          (List.sort compare
             (List.map fst (pick_k ~asked Session.Policy.Cheapest_first 99))));
    Alcotest.test_case "k < 1 raises" `Quick (fun () ->
        Alcotest.check_raises "k = 0"
          (Invalid_argument "Policy.pick_k: k must be >= 1") (fun () ->
            ignore (pick_k Session.Policy.Quality_greedy 0)));
    Alcotest.test_case "advise_k matches advise and empties on terminal"
      `Quick (fun () ->
        let s = create_exn ~pool ~task ~budget:10. ~confidence:1. () in
        (match (Session.Task.advise_k s ~k:3 ~now:0., Session.Task.advise s ~now:0.) with
        | (head :: _ as batch), Some single ->
            Alcotest.(check int) "head is the cached advice" single head;
            Alcotest.(check int) "three advised" 3 (List.length batch)
        | batch, single ->
            Alcotest.fail
              (Printf.sprintf "advice mismatch (batch %d, single %s)"
                 (List.length batch)
                 (match single with Some _ -> "some" | None -> "none")));
        Session.Task.decide s ~now:0.;
        Alcotest.(check (list int))
          "terminal sessions advise nobody" []
          (Session.Task.advise_k s ~k:3 ~now:0.));
  ]

(* ---- store ----------------------------------------------------------- *)

let store_tests =
  let fresh_session () =
    create_exn
      ~pool:(binary_pool [ 0.8 ] [ 1. ])
      ~task:(Engine.Task.binary ~alpha) ~budget:5. ~confidence:1. ()
  in
  [
    Alcotest.test_case "ttl expiry evicts and counts" `Quick (fun () ->
        let store = Session.Store.create ~ttl:100. () in
        (match
           Session.Store.open_session store ~pool:"p" ~task:"t"
             ~session:(fresh_session ()) ~now:0.
         with
        | `Ok -> ()
        | _ -> Alcotest.fail "open refused");
        (match Session.Store.find store ~pool:"p" ~task:"t" ~now:5. ~version:0 with
        | `Found _ -> ()
        | _ -> Alcotest.fail "live session not found");
        (* A recent sweep keeps the amortized scan quiet, so the lookup at
           101 exercises the lazy per-entry expiry path. *)
        Session.Store.sweep store ~now:90.;
        (match
           Session.Store.find store ~pool:"p" ~task:"t" ~now:101. ~version:0
         with
        | `Expired -> ()
        | _ -> Alcotest.fail "expected idle expiry");
        (match
           Session.Store.find store ~pool:"p" ~task:"t" ~now:101. ~version:0
         with
        | `Missing -> ()
        | _ -> Alcotest.fail "expired session must be evicted");
        let s = Session.Store.stats store in
        Alcotest.(check int) "expired" 1 s.Session.Store.expired;
        Alcotest.(check int) "open_now" 0 s.Session.Store.open_now);
    Alcotest.test_case "version bump invalidates" `Quick (fun () ->
        let store = Session.Store.create () in
        ignore
          (Session.Store.open_session store ~pool:"p" ~task:"t"
             ~session:(fresh_session ()) ~now:0.);
        (match Session.Store.find store ~pool:"p" ~task:"t" ~now:1. ~version:1 with
        | `Invalidated -> ()
        | _ -> Alcotest.fail "expected invalidation on version mismatch");
        (match Session.Store.find store ~pool:"p" ~task:"t" ~now:1. ~version:1 with
        | `Missing -> ()
        | _ -> Alcotest.fail "invalidated session must be evicted");
        Alcotest.(check int) "invalidated" 1
          (Session.Store.stats store).Session.Store.invalidated);
    Alcotest.test_case "cap refuses then admits after close" `Quick (fun () ->
        let store = Session.Store.create ~cap:2 () in
        let open_t t =
          Session.Store.open_session store ~pool:"p" ~task:t
            ~session:(fresh_session ()) ~now:0.
        in
        (match (open_t "a", open_t "b") with
        | `Ok, `Ok -> ()
        | _ -> Alcotest.fail "first two opens must succeed");
        (match open_t "c" with
        | `Full -> ()
        | _ -> Alcotest.fail "expected Full at cap");
        (match open_t "a" with
        | `Exists -> ()
        | _ -> Alcotest.fail "expected Exists for a live key");
        ignore (Session.Store.remove store ~pool:"p" ~task:"a");
        (match open_t "c" with
        | `Ok -> ()
        | _ -> Alcotest.fail "slot freed by close must admit");
        let s = Session.Store.stats store in
        Alcotest.(check int) "rejected" 1 s.Session.Store.rejected;
        Alcotest.(check int) "opened" 3 s.Session.Store.opened);
    Alcotest.test_case "cap reclaims expired sessions first" `Quick (fun () ->
        let store = Session.Store.create ~cap:1 ~ttl:10. () in
        ignore
          (Session.Store.open_session store ~pool:"p" ~task:"old"
             ~session:(fresh_session ()) ~now:0.);
        match
          Session.Store.open_session store ~pool:"p" ~task:"new"
            ~session:(fresh_session ()) ~now:20.
        with
        | `Ok ->
            Alcotest.(check int) "expired" 1
              (Session.Store.stats store).Session.Store.expired
        | _ -> Alcotest.fail "expected reclamation of the expired slot");
    Alcotest.test_case "stats add is componentwise" `Quick (fun () ->
        let a =
          {
            Session.Store.open_now = 1; opened = 2; decided = 3; expired = 4;
            invalidated = 5; rejected = 6;
          }
        in
        let s = Session.Store.add_stats a Session.Store.zero_stats in
        Alcotest.(check bool) "identity" true (s = a);
        let d = Session.Store.add_stats a a in
        Alcotest.(check int) "opened doubled" 4 d.Session.Store.opened;
        Alcotest.(check int) "decided doubled" 6 d.Session.Store.decided;
        Alcotest.(check int) "rejected doubled" 12 d.Session.Store.rejected);
  ]

let () =
  Alcotest.run "session"
    [
      ("posterior", [ seq_vs_batch_binary; seq_vs_batch_matrix; order_invariance ]);
      ("task", task_tests);
      ("policy", policy_tests);
      ("batch advice", batch_advice_tests);
      ("store", store_tests);
    ]
