(* Tests for the voting-strategy substrate: votes, the strategy interface,
   the deterministic and randomized strategy zoo, and multi-class voting. *)

open Voting

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let quality_gen = QCheck2.Gen.float_range 0.01 0.99

(* A random jury (qualities) plus an aligned voting. *)
let jury_voting_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun n ->
    pair
      (array_size (return n) quality_gen)
      (array_size (return n) (map (fun b -> if b then Vote.Yes else Vote.No) bool)))

(* ---- Vote ------------------------------------------------------------ *)

let test_vote_conversions () =
  check_int "No" 0 (Vote.to_int Vote.No);
  check_int "Yes" 1 (Vote.to_int Vote.Yes);
  check_bool "roundtrip" true (Vote.equal (Vote.of_int 1) Vote.Yes);
  check_bool "flip" true (Vote.equal (Vote.flip Vote.No) Vote.Yes);
  Alcotest.check_raises "bad int" (Invalid_argument "Vote.of_int: 2 is not a binary vote")
    (fun () -> ignore (Vote.of_int 2))

let test_vote_counts () =
  let v = Vote.voting_of_ints [ 0; 1; 0; 0; 1 ] in
  check_int "count_no" 3 (Vote.count_no v);
  check_int "count_yes" 2 (Vote.count_yes v);
  let flipped = Vote.flip_all v in
  check_int "flipped no" 2 (Vote.count_no flipped)

let test_vote_enumerate () =
  let all = List.of_seq (Vote.enumerate 3) in
  check_int "count" 8 (List.length all);
  check_int "distinct" 8 (List.length (List.sort_uniq compare all));
  (* First is all-No, last is all-Yes (most-significant-first order). *)
  check_int "first all-no" 3 (Vote.count_no (List.hd all));
  check_int "last all-yes" 0 (Vote.count_no (List.nth all 7));
  Alcotest.check_raises "too large" (Invalid_argument "Vote.enumerate: n outside [0, 25]")
    (fun () -> ignore (Vote.enumerate 26 : Vote.voting Seq.t))

(* ---- Strategy interface ----------------------------------------------- *)

let test_strategy_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Strategy.decide: qualities and voting lengths differ")
    (fun () ->
      ignore
        (Strategy.decide Classic.majority ~alpha:0.5 ~qualities:[| 0.7 |]
           (Vote.voting_of_ints [ 0; 1 ])));
  Alcotest.check_raises "alpha" (Invalid_argument "Strategy.decide: alpha outside [0, 1]")
    (fun () ->
      ignore
        (Strategy.decide Classic.majority ~alpha:1.5 ~qualities:[| 0.7 |]
           (Vote.voting_of_ints [ 0 ])))

let test_prob_decide_no () =
  check_float "Decide No" 1. (Strategy.prob_decide_no (Strategy.Decide Vote.No));
  check_float "Decide Yes" 0. (Strategy.prob_decide_no (Strategy.Decide Vote.Yes));
  check_float "Randomize" 0.3 (Strategy.prob_decide_no (Strategy.Randomize 0.3))

let test_is_deterministic () =
  check_bool "MV deterministic" true
    (Strategy.is_deterministic_on Classic.majority ~alpha:0.5
       ~qualities:[| 0.7; 0.7; 0.7 |] ~n:3);
  check_bool "RMV not" false
    (Strategy.is_deterministic_on Randomized.randomized_majority ~alpha:0.5
       ~qualities:[| 0.7; 0.7; 0.7 |] ~n:3)

let test_run_deterministic () =
  let rng = Prob.Rng.create 0 in
  let v =
    Strategy.run Classic.majority rng ~alpha:0.5 ~qualities:[| 0.7; 0.7; 0.7 |]
      (Vote.voting_of_ints [ 0; 0; 1 ])
  in
  check_bool "majority zeros" true (Vote.equal v Vote.No)

(* ---- Classic strategies ------------------------------------------------ *)

let mv_decide ints =
  Strategy.decide Classic.majority ~alpha:0.5
    ~qualities:(Array.make (List.length ints) 0.7)
    (Vote.voting_of_ints ints)

let test_mv_cases () =
  check_bool "strict majority 0" true (mv_decide [ 0; 0; 1 ] = Strategy.Decide Vote.No);
  check_bool "strict majority 1" true (mv_decide [ 1; 1; 0 ] = Strategy.Decide Vote.Yes);
  (* Example 1's formula: ties on an even jury go to 1. *)
  check_bool "tie goes to 1" true (mv_decide [ 0; 1 ] = Strategy.Decide Vote.Yes);
  check_bool "single 0" true (mv_decide [ 0 ] = Strategy.Decide Vote.No)

let test_half_cases () =
  let half ints =
    Strategy.decide Classic.half ~alpha:0.5
      ~qualities:(Array.make (List.length ints) 0.7)
      (Vote.voting_of_ints ints)
  in
  check_bool "tie goes to 0" true (half [ 0; 1 ] = Strategy.Decide Vote.No);
  check_bool "majority 1 wins" true (half [ 1; 1; 0 ] = Strategy.Decide Vote.Yes)

let test_mv_tie_coin () =
  let outcome =
    Strategy.decide Classic.majority_tie_coin ~alpha:0.5 ~qualities:[| 0.7; 0.7 |]
      (Vote.voting_of_ints [ 0; 1 ])
  in
  check_float "tie randomized" 0.5 (Strategy.prob_decide_no outcome)

let test_weighted_majority () =
  let s = Classic.weighted_majority ~weights:[| 5.; 1.; 1. |] in
  let outcome =
    Strategy.decide s ~alpha:0.5 ~qualities:[| 0.9; 0.6; 0.6 |]
      (Vote.voting_of_ints [ 0; 1; 1 ])
  in
  (* Weight 5 beats 1+1: heavy worker's 0 wins. *)
  check_bool "heavy worker wins" true (outcome = Strategy.Decide Vote.No)

let test_logit_wmv_equals_bv =
  (* Mathematically sign(sum of signed logits) = sign(ln P0 - ln P1), but
     the two sides accumulate differently in floating point, so within an
     epsilon of the decision boundary (exact ties included) they may break
     the tie differently; the property holds away from it. *)
  qtest "logit-weighted MV = BV at alpha 0.5 (off the tie boundary)"
    QCheck2.Gen.(
      jury_voting_gen >>= fun (qs, v) ->
      return (Array.map (fun q -> Float.max 0.51 q) qs, v))
    (fun (qs, v) ->
      let margin =
        let l0, l1 = Bayesian.log_joint ~alpha:0.5 ~qualities:qs v in
        Float.abs (l0 -. l1)
      in
      margin < 1e-9
      ||
      let a =
        Strategy.decide Classic.logit_weighted_majority ~alpha:0.5 ~qualities:qs v
      in
      let b = Strategy.decide Bayesian.strategy ~alpha:0.5 ~qualities:qs v in
      a = b)

let test_recursive_majority_cases () =
  let decide ints =
    Strategy.decide Classic.recursive_majority ~alpha:0.5
      ~qualities:(Array.make (List.length ints) 0.7)
      (Vote.voting_of_ints ints)
  in
  (* Nine votes: triads (0,0,1) (1,1,0) (0,0,0) -> (0,1,0) -> 0. *)
  check_bool "two-level reduction" true
    (decide [ 0; 0; 1; 1; 1; 0; 0; 0; 0 ] = Strategy.Decide Vote.No);
  check_bool "single vote" true (decide [ 1 ] = Strategy.Decide Vote.Yes);
  (* Grouping matters: MV of (0,0,1,1,1,1,0,0,0) is 0 (5 zeros), but the
     triads reduce (0,0,1)(1,1,1)(0,0,0) -> (0,1,0) -> 0 as well; a case
     where they differ: (1,1,0)(0,0,1)(1,...)? use (1,1,0,0,0,1,1,1,0):
     triads -> (1,0,1) -> 1 while flat MV counts 4 zeros vs 5 ones -> 1.
     Exercise a genuine disagreement: (0,1,1)(1,0,0)(0,0,1) has 5 zeros
     (MV -> 0) but triads reduce to (1,0,0) -> 0 too; disagreements are
     rare at n = 9, so just pin determinism and agreement with MV on
     unanimous votes. *)
  check_bool "unanimous" true (decide [ 0; 0; 0; 0; 0; 0 ] = Strategy.Decide Vote.No)

let test_recursive_majority_weaker_than_mv () =
  (* For i.i.d. workers, recursive majority is known to waste information
     relative to flat majority: at q = 0.7, n = 9,
     JQ(flat) = Pr(Binom(9, .7) >= 5) > JQ(triadic) = g(g(0.7)) where
     g(p) = p^3 + 3 p^2 (1-p). *)
  let qualities = Array.make 9 0.7 in
  let flat = Jq.Exact.jq Classic.majority ~alpha:0.5 ~qualities in
  let triadic = Jq.Exact.jq Classic.recursive_majority ~alpha:0.5 ~qualities in
  let g p = (p ** 3.) +. (3. *. p *. p *. (1. -. p)) in
  check_close 1e-9 "closed form" (g (g 0.7)) triadic;
  check_bool "flat majority wins" true (flat > triadic)

let test_constant () =
  check_bool "always yes" true
    (Strategy.decide (Classic.constant Vote.Yes) ~alpha:0.5 ~qualities:[| 0.7 |]
       (Vote.voting_of_ints [ 0 ])
    = Strategy.Decide Vote.Yes)

(* ---- Bayesian ---------------------------------------------------------- *)

let test_bv_example3 () =
  (* Paper Example 3: alpha = 0.5, V = {0,1,1}, qualities (0.9, 0.6, 0.6):
     0.5*0.9*0.4*0.4 > 0.5*0.1*0.6*0.6, so BV answers 0. *)
  let v =
    Bayesian.decide_exact ~alpha:0.5 ~qualities:[| 0.9; 0.6; 0.6 |]
      (Vote.voting_of_ints [ 0; 1; 1 ])
  in
  check_bool "follows strong worker" true (Vote.equal v Vote.No);
  (* And MV disagrees (two Yes votes). *)
  check_bool "MV says yes" true
    (Strategy.decide Classic.majority ~alpha:0.5 ~qualities:[| 0.9; 0.6; 0.6 |]
       (Vote.voting_of_ints [ 0; 1; 1 ])
    = Strategy.Decide Vote.Yes)

let test_bv_tie_goes_to_zero () =
  (* All coins: P0 = P1, Theorem 1 returns 0. *)
  let v =
    Bayesian.decide_exact ~alpha:0.5 ~qualities:[| 0.5; 0.5 |]
      (Vote.voting_of_ints [ 0; 1 ])
  in
  check_bool "tie -> 0" true (Vote.equal v Vote.No)

let test_bv_prior_dominance () =
  (* Strong prior on 1 overrides a weak 0-vote. *)
  let v =
    Bayesian.decide_exact ~alpha:0.05 ~qualities:[| 0.6 |] (Vote.voting_of_ints [ 0 ])
  in
  check_bool "prior wins" true (Vote.equal v Vote.Yes)

let test_bv_log_joint_matches_products =
  qtest "log_joint equals direct products" jury_voting_gen (fun (qs, v) ->
      let l0, l1 = Bayesian.log_joint ~alpha:0.4 ~qualities:qs v in
      let p0 = ref 0.4 and p1 = ref 0.6 in
      Array.iteri
        (fun i vote ->
          match (vote : Vote.t) with
          | Vote.No ->
              p0 := !p0 *. qs.(i);
              p1 := !p1 *. (1. -. qs.(i))
          | Vote.Yes ->
              p0 := !p0 *. (1. -. qs.(i));
              p1 := !p1 *. qs.(i))
        v;
      Float.abs (exp l0 -. !p0) < 1e-9 && Float.abs (exp l1 -. !p1) < 1e-9)

let test_bv_posterior =
  qtest "posterior in [0,1] and consistent with decision" jury_voting_gen
    (fun (qs, v) ->
      let p = Bayesian.posterior_no ~alpha:0.5 ~qualities:qs v in
      let d = Bayesian.decide_exact ~alpha:0.5 ~qualities:qs v in
      p >= 0. && p <= 1.
      && (if p > 0.5 then Vote.equal d Vote.No else true)
      && if p < 0.5 then Vote.equal d Vote.Yes else true)

let test_bv_certain_worker () =
  (* A quality-1 worker's vote decides regardless of everyone else. *)
  let v =
    Bayesian.decide_exact ~alpha:0.5 ~qualities:[| 1.0; 0.6; 0.6 |]
      (Vote.voting_of_ints [ 0; 1; 1 ])
  in
  check_bool "certain worker wins" true (Vote.equal v Vote.No)

(* ---- Randomized strategies --------------------------------------------- *)

let test_rmv_share () =
  let outcome =
    Strategy.decide Randomized.randomized_majority ~alpha:0.5
      ~qualities:[| 0.7; 0.7; 0.7; 0.7 |]
      (Vote.voting_of_ints [ 0; 0; 0; 1 ])
  in
  check_float "share of zeros" 0.75 (Strategy.prob_decide_no outcome)

let test_coin_flip () =
  let outcome =
    Strategy.decide Randomized.coin_flip ~alpha:0.5 ~qualities:[| 0.7 |]
      (Vote.voting_of_ints [ 0 ])
  in
  check_float "coin" 0.5 (Strategy.prob_decide_no outcome)

let test_rwmv () =
  let s = Randomized.randomized_weighted_majority ~weights:[| 3.; 1. |] in
  let outcome =
    Strategy.decide s ~alpha:0.5 ~qualities:[| 0.8; 0.6 |] (Vote.voting_of_ints [ 0; 1 ])
  in
  check_float "weighted share" 0.75 (Strategy.prob_decide_no outcome);
  let zero = Randomized.randomized_weighted_majority ~weights:[| 0.; 0. |] in
  check_float "zero weights -> coin" 0.5
    (Strategy.prob_decide_no
       (Strategy.decide zero ~alpha:0.5 ~qualities:[| 0.8; 0.6 |]
          (Vote.voting_of_ints [ 0; 1 ])))

let test_mixture () =
  let s = Randomized.mixture 0.5 (Classic.constant Vote.No) (Classic.constant Vote.Yes) in
  check_float "half/half" 0.5
    (Strategy.prob_decide_no
       (Strategy.decide s ~alpha:0.5 ~qualities:[| 0.7 |] (Vote.voting_of_ints [ 0 ])));
  Alcotest.check_raises "bad p" (Invalid_argument "Randomized.mixture: p outside [0, 1]")
    (fun () -> ignore (Randomized.mixture 1.5 Classic.majority Classic.half))

let test_run_samples_both () =
  let rng = Prob.Rng.create 9 in
  let saw_no = ref false and saw_yes = ref false in
  for _ = 1 to 200 do
    match
      Strategy.run Randomized.coin_flip rng ~alpha:0.5 ~qualities:[| 0.7 |]
        (Vote.voting_of_ints [ 0 ])
    with
    | Vote.No -> saw_no := true
    | Vote.Yes -> saw_yes := true
  done;
  check_bool "both outcomes occur" true (!saw_no && !saw_yes)

(* ---- Registry ----------------------------------------------------------- *)

let test_registry () =
  check_bool "finds BV" true (Registry.find "bv" <> None);
  check_bool "finds MV case-insensitive" true (Registry.find "Mv" <> None);
  check_bool "unknown" true (Registry.find "nope" = None);
  check_int "comparison set" 4 (List.length Registry.comparison_set);
  check_int "names = all" (List.length Registry.all) (List.length (Registry.names ()))

(* ---- Multiclass ----------------------------------------------------------- *)

let sym3 q id =
  Workers.Confusion.make ~id
    ~matrix:
      [|
        [| q; (1. -. q) /. 2.; (1. -. q) /. 2. |];
        [| (1. -. q) /. 2.; q; (1. -. q) /. 2. |];
        [| (1. -. q) /. 2.; (1. -. q) /. 2.; q |];
      |]
    ~cost:1. ()

let uniform3 = [| 1. /. 3.; 1. /. 3.; 1. /. 3. |]

let test_plurality () =
  let jury = [| sym3 0.8 0; sym3 0.8 1; sym3 0.8 2 |] in
  check_bool "majority label" true
    (Multiclass.decide Multiclass.plurality ~prior:uniform3 ~jury [| 2; 2; 0 |]
    = Multiclass.Decide 2);
  (* Tie between 0 and 2: smallest label wins. *)
  check_bool "tie to smallest" true
    (Multiclass.decide Multiclass.plurality ~prior:uniform3 ~jury [| 2; 0; 1 |]
    = Multiclass.Decide 0)

let test_multiclass_bv_follows_strong () =
  let jury = [| sym3 0.95 0; sym3 0.55 1; sym3 0.55 2 |] in
  (* Strong worker says 1, two weak say 2. *)
  check_bool "BV follows strong" true
    (Multiclass.decide Multiclass.bayesian ~prior:uniform3 ~jury [| 1; 2; 2 |]
    = Multiclass.Decide 1);
  check_bool "plurality follows crowd" true
    (Multiclass.decide Multiclass.plurality ~prior:uniform3 ~jury [| 1; 2; 2 |]
    = Multiclass.Decide 2)

let test_multiclass_posterior () =
  let jury = [| sym3 0.8 0; sym3 0.7 1 |] in
  let post = Multiclass.posterior ~prior:uniform3 ~jury [| 1; 1 |] in
  check_close 1e-9 "sums to one" 1. (Prob.Kahan.sum_array post);
  check_bool "votes label most likely" true (post.(1) > post.(0) && post.(1) > post.(2))

let test_multiclass_binary_consistency =
  qtest ~count:100 "2-label BV = binary BV"
    QCheck2.Gen.(
      int_range 1 6 >>= fun n ->
      pair
        (array_size (return n) (float_range 0.05 0.95))
        (array_size (return n) (int_range 0 1)))
    (fun (qs, votes) ->
      let jury =
        Array.mapi (fun id q -> Workers.Confusion.symmetric_binary ~quality:q ~id ~cost:0.) qs
      in
      let mc =
        match Multiclass.decide Multiclass.bayesian ~prior:[| 0.5; 0.5 |] ~jury votes with
        | Multiclass.Decide l -> l
        | Multiclass.Randomize _ -> -1
      in
      let bin =
        Vote.to_int
          (Bayesian.decide_exact ~alpha:0.5 ~qualities:qs
             (Array.map Vote.of_int votes))
      in
      mc = bin)

let test_multiclass_validation () =
  let jury = [| sym3 0.8 0 |] in
  Alcotest.check_raises "prior sum" (Invalid_argument "Multiclass: prior does not sum to 1")
    (fun () ->
      ignore (Multiclass.decide Multiclass.plurality ~prior:[| 0.5; 0.2; 0.2 |] ~jury [| 0 |]));
  Alcotest.check_raises "vote range" (Invalid_argument "Multiclass: vote out of range")
    (fun () ->
      ignore (Multiclass.decide Multiclass.plurality ~prior:uniform3 ~jury [| 3 |]));
  Alcotest.check_raises "length" (Invalid_argument "Multiclass: jury and voting lengths differ")
    (fun () ->
      ignore (Multiclass.decide Multiclass.plurality ~prior:uniform3 ~jury [| 0; 1 |]));
  let binary_juror = Workers.Confusion.symmetric_binary ~quality:0.7 ~id:0 ~cost:0. in
  Alcotest.check_raises "arity"
    (Invalid_argument "Multiclass: juror label count differs from prior") (fun () ->
      ignore
        (Multiclass.decide Multiclass.plurality ~prior:uniform3 ~jury:[| binary_juror |]
           [| 0 |]))

let test_multiclass_enumerate () =
  let all = List.of_seq (Multiclass.enumerate_votings ~labels:3 ~n:3 ()) in
  check_int "3^3" 27 (List.length all);
  check_int "distinct" 27 (List.length (List.sort_uniq compare all))

let test_multiclass_random_ballot () =
  let jury = [| sym3 0.8 0 |] in
  match Multiclass.decide Multiclass.random_ballot ~prior:uniform3 ~jury [| 1 |] with
  | Multiclass.Randomize p ->
      check_close 1e-12 "uniform" (1. /. 3.) p.(0);
      check_close 1e-9 "sums" 1. (Prob.Kahan.sum_array p)
  | Multiclass.Decide _ -> Alcotest.fail "expected randomized"

let test_multiclass_run () =
  let rng = Prob.Rng.create 5 in
  let jury = [| sym3 0.9 0 |] in
  let l = Multiclass.run Multiclass.bayesian rng ~prior:uniform3 ~jury [| 2 |] in
  check_int "follows vote" 2 l

let () =
  Alcotest.run "voting"
    [
      ( "vote",
        [
          Alcotest.test_case "conversions" `Quick test_vote_conversions;
          Alcotest.test_case "counts" `Quick test_vote_counts;
          Alcotest.test_case "enumerate" `Quick test_vote_enumerate;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "validation" `Quick test_strategy_validation;
          Alcotest.test_case "prob_decide_no" `Quick test_prob_decide_no;
          Alcotest.test_case "is_deterministic" `Quick test_is_deterministic;
          Alcotest.test_case "run deterministic" `Quick test_run_deterministic;
        ] );
      ( "classic",
        [
          Alcotest.test_case "MV cases" `Quick test_mv_cases;
          Alcotest.test_case "half cases" `Quick test_half_cases;
          Alcotest.test_case "MV tie coin" `Quick test_mv_tie_coin;
          Alcotest.test_case "weighted majority" `Quick test_weighted_majority;
          test_logit_wmv_equals_bv;
          Alcotest.test_case "recursive majority cases" `Quick
            test_recursive_majority_cases;
          Alcotest.test_case "recursive majority weaker" `Quick
            test_recursive_majority_weaker_than_mv;
          Alcotest.test_case "constant" `Quick test_constant;
        ] );
      ( "bayesian",
        [
          Alcotest.test_case "example 3" `Quick test_bv_example3;
          Alcotest.test_case "tie goes to zero" `Quick test_bv_tie_goes_to_zero;
          Alcotest.test_case "prior dominance" `Quick test_bv_prior_dominance;
          test_bv_log_joint_matches_products;
          test_bv_posterior;
          Alcotest.test_case "certain worker" `Quick test_bv_certain_worker;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "RMV share" `Quick test_rmv_share;
          Alcotest.test_case "coin flip" `Quick test_coin_flip;
          Alcotest.test_case "RWMV" `Quick test_rwmv;
          Alcotest.test_case "mixture" `Quick test_mixture;
          Alcotest.test_case "run samples both" `Quick test_run_samples_both;
        ] );
      ("registry", [ Alcotest.test_case "lookup" `Quick test_registry ]);
      ( "multiclass",
        [
          Alcotest.test_case "plurality" `Quick test_plurality;
          Alcotest.test_case "BV follows strong" `Quick test_multiclass_bv_follows_strong;
          Alcotest.test_case "posterior" `Quick test_multiclass_posterior;
          test_multiclass_binary_consistency;
          Alcotest.test_case "validation" `Quick test_multiclass_validation;
          Alcotest.test_case "enumerate" `Quick test_multiclass_enumerate;
          Alcotest.test_case "random ballot" `Quick test_multiclass_random_ballot;
          Alcotest.test_case "run" `Quick test_multiclass_run;
        ] );
    ]
