(* Tests for the experiment harness: configuration, replication plumbing,
   reporting, and the per-figure drivers (run in smoke-test mode). *)

let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Tiny configuration so driver smoke tests stay fast. *)
let tiny =
  {
    Expt.Config.fast with
    reps = 2;
    n_workers = 12;
    amt_questions = 5;
  }

(* ---- Config ----------------------------------------------------------- *)

let test_config_defaults () =
  let c = Expt.Config.default in
  check_int "N" 50 c.Expt.Config.n_workers;
  check_close 1e-12 "B" 0.5 c.Expt.Config.budget;
  check_close 1e-12 "alpha" 0.5 c.Expt.Config.alpha;
  check_int "numBuckets" 50 c.Expt.Config.num_buckets

let test_config_updates () =
  let c = Expt.Config.default |> Expt.Config.with_reps 7 |> Expt.Config.with_seed 3 in
  check_int "reps" 7 c.Expt.Config.reps;
  check_int "seed" 3 c.Expt.Config.seed;
  let c = Expt.Config.with_questions 42 c in
  check_int "questions" 42 c.Expt.Config.amt_questions

(* ---- Series ------------------------------------------------------------ *)

let test_replicate () =
  let rng = Prob.Rng.create 1 in
  let s = Expt.Series.replicate rng ~reps:10 (fun r -> Prob.Rng.unit_float r) in
  check_int "count" 10 s.Prob.Stats.count;
  check_bool "mean in range" true (s.Prob.Stats.mean > 0. && s.Prob.Stats.mean < 1.)

let test_replicate_streams_independent () =
  (* Replications with private streams must not all be equal. *)
  let rng = Prob.Rng.create 2 in
  let xs = Expt.Series.replicate_collect rng ~reps:5 (fun r -> Prob.Rng.unit_float r) in
  check_bool "values differ" true (List.length (List.sort_uniq compare xs) > 1)

let test_timed () =
  let x, seconds = Expt.Series.timed (fun () -> 42) in
  check_int "result" 42 x;
  check_bool "time nonnegative" true (seconds >= 0.)

(* ---- Parallel -------------------------------------------------------------- *)

let test_parallel_matches_sequential () =
  let xs = List.init 37 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order preserved" (List.map f xs)
    (Expt.Parallel.map ~domains:4 f xs);
  Alcotest.(check (list int)) "domains > length" (List.map f xs)
    (Expt.Parallel.map ~domains:64 f xs);
  Alcotest.(check (list int)) "empty" [] (Expt.Parallel.map ~domains:4 f [])

let test_parallel_replication_deterministic () =
  let run domains =
    let rng = Prob.Rng.create 9 in
    Expt.Series.replicate_collect ~domains rng ~reps:16 (fun r -> Prob.Rng.unit_float r)
  in
  Alcotest.(check (list (float 0.))) "identical across domain counts" (run 1) (run 4)

let test_parallel_propagates_exception () =
  Alcotest.check_raises "exception surfaces" (Failure "boom") (fun () ->
      ignore (Expt.Parallel.map ~domains:3 (fun _ -> failwith "boom") [ 1; 2; 3; 4 ]))

let test_parallel_validation () =
  Alcotest.check_raises "domains" (Invalid_argument "Parallel.map: domains <= 0")
    (fun () -> ignore (Expt.Parallel.map ~domains:0 Fun.id [ 1 ]));
  Alcotest.check_raises "map_array domains"
    (Invalid_argument "Parallel.map_array: domains <= 0") (fun () ->
      ignore (Expt.Parallel.map_array ~domains:0 Fun.id [| 1 |]));
  Alcotest.check_raises "map_array chunk"
    (Invalid_argument "Parallel.map_array: chunk <= 0") (fun () ->
      ignore (Expt.Parallel.map_array ~domains:2 ~chunk:0 Fun.id [| 1 |]))

let test_map_array_matches_sequential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"map_array = Array.map at any domain/chunk split"
       QCheck2.Gen.(
         triple
           (array_size (int_range 0 64) (int_range (-1000) 1000))
           (int_range 1 8) (int_range 1 16))
       (fun (xs, domains, chunk) ->
         let f x = (x * 31) lxor 9 in
         Expt.Parallel.map_array ~domains ~chunk f xs = Array.map f xs
         && Expt.Parallel.map_array ~domains f xs = Array.map f xs))

let test_map_array_guided_matches_sequential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"guided self-scheduling = Array.map, skewed costs included"
       QCheck2.Gen.(
         pair
           (array_size (int_range 0 64) (int_range 0 1000))
           (int_range 1 8))
       (fun (xs, domains) ->
         (* Skew the per-element cost so guided claims actually shrink:
            a few elements spin, most are trivial. *)
         let f x =
           if x mod 17 = 0 then (
             let acc = ref x in
             for _ = 1 to 500 do
               acc := (!acc * 31) lxor 9
             done;
             !acc)
           else (x * 31) lxor 9
         in
         Expt.Parallel.map_array ~domains ~sched:`Guided f xs
         = Array.map f xs))

let test_map_array_uses_workspaces () =
  (* A JQ sweep through map_array: each domain picks up its own default
     workspace, and the numbers must match the sequential sweep exactly. *)
  let pools =
    Array.init 12 (fun i ->
        Workers.Pool.qualities
          (Workers.Generator.gaussian_pool (Prob.Rng.create i)
             Workers.Generator.default (8 + i)))
  in
  let f qs = Jq.Bucket.estimate qs in
  Alcotest.(check (array (float 0.)))
    "parallel sweep bit-identical" (Array.map f pools)
    (Expt.Parallel.map_array ~domains:4 ~chunk:2 f pools)

(* ---- Restarts --------------------------------------------------------------- *)

let restart_pool =
  Workers.Generator.gaussian_pool (Prob.Rng.create 41) Workers.Generator.default 14

let light_annealing = { Jsp.Annealing.default_params with epsilon = 1e-4 }

let test_restarts_parallel_identical () =
  (* Restarts own their RNGs, so fanning out over domains must not change
     anything — same seeds, same juries, bit for bit. *)
  let run domains =
    Expt.Restarts.run_optjs ~domains ~params:light_annealing
      ~seeds:(Expt.Restarts.seeds_from ~seed:100 ~restarts:6)
      ~alpha:0.5 ~budget:0.4 restart_pool
  in
  let seq = run 1 and par = run 3 in
  check_bool "same best jury" true
    (Workers.Pool.equal seq.Expt.Restarts.best.Jsp.Solver.jury
       par.Expt.Restarts.best.Jsp.Solver.jury);
  check_close 0. "same best score" seq.Expt.Restarts.best.Jsp.Solver.score
    par.Expt.Restarts.best.Jsp.Solver.score;
  check_int "same winning seed" seq.Expt.Restarts.seed par.Expt.Restarts.seed;
  List.iter2
    (fun (a : _ Jsp.Solver.result) (b : _ Jsp.Solver.result) ->
      check_close 0. "per-run score" a.Jsp.Solver.score b.Jsp.Solver.score)
    seq.Expt.Restarts.runs par.Expt.Restarts.runs

let test_restarts_best_dominates () =
  let o =
    Expt.Restarts.run_mvjs ~params:light_annealing
      ~seeds:[ 3; 17; 29 ] ~alpha:0.5 ~budget:0.4 restart_pool
  in
  check_int "one run per seed" 3 (List.length o.Expt.Restarts.runs);
  List.iter
    (fun (r : _ Jsp.Solver.result) ->
      check_bool "best >= run" true
        (o.Expt.Restarts.best.Jsp.Solver.score >= r.Jsp.Solver.score))
    o.Expt.Restarts.runs;
  check_bool "winner is one of the runs" true
    (List.exists
       (fun (r : _ Jsp.Solver.result) ->
         r.Jsp.Solver.score = o.Expt.Restarts.best.Jsp.Solver.score)
       o.Expt.Restarts.runs)

let test_restarts_cache_totals () =
  let o =
    Expt.Restarts.run_optjs ~params:light_annealing ~cache:true
      ~seeds:[ 1; 2 ] ~alpha:0.5 ~budget:0.4 restart_pool
  in
  (match Expt.Restarts.cache_totals o.Expt.Restarts.runs with
  | Some s ->
      check_bool "misses accumulated" true (s.Jsp.Objective_cache.misses > 0);
      let per_run =
        List.filter_map (fun (r : _ Jsp.Solver.result) -> r.Jsp.Solver.cache)
          o.Expt.Restarts.runs
      in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 per_run in
      check_int "hits are summed" (sum (fun s -> s.Jsp.Objective_cache.hits))
        s.Jsp.Objective_cache.hits
  | None -> Alcotest.fail "cache totals expected");
  let uncached =
    Expt.Restarts.run_optjs ~params:light_annealing ~cache:false
      ~seeds:[ 1 ] ~alpha:0.5 ~budget:0.4 restart_pool
  in
  check_bool "no totals without caching" true
    (Expt.Restarts.cache_totals uncached.Expt.Restarts.runs = None)

let test_restarts_validation () =
  Alcotest.check_raises "empty seeds" (Invalid_argument "Restarts.run: no seeds")
    (fun () ->
      ignore
        (Expt.Restarts.run_optjs ~seeds:[] ~alpha:0.5 ~budget:0.4 restart_pool));
  Alcotest.check_raises "restarts <= 0"
    (Invalid_argument "Restarts.seeds_from: restarts <= 0") (fun () ->
      ignore (Expt.Restarts.seeds_from ~seed:0 ~restarts:0));
  Alcotest.(check (list int)) "seed range" [ 5; 6; 7 ]
    (Expt.Restarts.seeds_from ~seed:5 ~restarts:3)

(* ---- Report ------------------------------------------------------------- *)

let sample_table =
  Expt.Report.make ~id:"t" ~title:"Sample" ~header:[ "x"; "y" ]
    ~notes:[ "a note" ]
    [ [ "1"; "2.0" ]; [ "3"; "4.0" ] ]

let test_report_cells () =
  check_string "pct" "12.34%" (Expt.Report.cell_pct 0.1234);
  check_string "int" "7" (Expt.Report.cell_int 7);
  check_string "float" "0.5" (Expt.Report.cell_float 0.5)

let test_report_csv () =
  check_string "csv" "x,y\n1,2.0\n3,4.0" (Expt.Report.to_csv sample_table)

let test_report_csv_escaping () =
  let t =
    Expt.Report.make ~id:"e" ~title:"esc" ~header:[ "a" ] [ [ "hello, \"world\"" ] ]
  in
  check_string "escaped" "a\n\"hello, \"\"world\"\"\"" (Expt.Report.to_csv t)

let test_report_pp_contains_rows () =
  let rendered = Format.asprintf "%a" Expt.Report.pp sample_table in
  check_bool "has title" true
    (String.length rendered > 0
    && String.exists (fun _ -> true) rendered
    &&
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains rendered "Sample" && contains rendered "a note" && contains rendered "4.0")

let test_report_save_csv () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "optjs_test_csv" in
  let path = Expt.Report.save_csv ~dir sample_table in
  check_bool "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  check_string "header line" "x,y" first;
  Sys.remove path

(* ---- Experiments --------------------------------------------------------- *)

let test_ids_covered () =
  check_int "19 artifacts" 19 (List.length Expt.Experiments.ids);
  List.iter
    (fun id ->
      check_bool (id ^ " resolvable") true (Expt.Experiments.by_id id <> None))
    Expt.Experiments.ids;
  check_bool "unknown id" true (Expt.Experiments.by_id "fig99" = None)

let run_driver id =
  match Expt.Experiments.by_id id with
  | Some driver -> driver ~config:tiny ()
  | None -> Alcotest.failf "unknown driver %s" id

let test_fig1_rows () =
  let t = run_driver "fig1" in
  check_int "4 budgets" 4 (List.length t.Expt.Report.rows);
  check_string "id" "fig1" t.Expt.Report.id

let test_fig2_rows () =
  let t = run_driver "fig2" in
  check_int "8 votings" 8 (List.length t.Expt.Report.rows)

let test_fig6_shape () =
  let t = run_driver "fig6a" in
  check_int "11 mu points" 11 (List.length t.Expt.Report.rows);
  check_int "3 columns" 3 (List.length t.Expt.Report.header)

let test_fig7_and_tab3 () =
  let fig, tab = Expt.Experiments.fig7a_and_tab3 ~config:tiny () in
  check_int "10 budgets" 10 (List.length fig.Expt.Report.rows);
  check_int "5 ranges" 5 (List.length tab.Expt.Report.rows);
  (* Total counted runs = budgets x reps. *)
  let total =
    List.fold_left
      (fun acc row -> acc + int_of_string (List.nth row 1))
      0 tab.Expt.Report.rows
  in
  check_int "all runs counted" (10 * tiny.Expt.Config.reps) total

let test_fig8_shape () =
  let t = run_driver "fig8b" in
  check_int "11 jury sizes" 11 (List.length t.Expt.Report.rows);
  check_int "five columns" 5 (List.length t.Expt.Report.header)

let test_fig9_shapes () =
  let b = run_driver "fig9b" in
  check_int "bucket counts" 7 (List.length b.Expt.Report.rows);
  let c = run_driver "fig9c" in
  check_int "histogram buckets" 5 (List.length c.Expt.Report.rows)

let test_fig10d_shape () =
  let t = run_driver "fig10d" in
  check_int "z sweep" 18 (List.length t.Expt.Report.rows);
  (* Accuracy and JQ columns should track within ~15 points everywhere
     (the paper's Figure 10d shows them nearly coinciding). *)
  List.iter
    (fun row ->
      let parse s = float_of_string (String.sub s 0 (String.length s - 1)) in
      let acc = parse (List.nth row 1) and jq = parse (List.nth row 2) in
      check_bool "JQ tracks accuracy" true (Float.abs (acc -. jq) < 15.))
    t.Expt.Report.rows

(* ---- Chart ----------------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_chart_parse_cell () =
  let check_parse label expected cell =
    match Expt.Chart.parse_cell cell with
    | Some v -> check_close 1e-9 label expected v
    | None -> Alcotest.failf "%s: expected a number" label
  in
  check_parse "percent" 0.845 "84.50%";
  check_parse "seconds" 0.012 "0.012s";
  check_parse "millis" 0.00155 "1.55 ms";
  check_parse "plain" 17. "17";
  check_bool "non-numeric" true (Expt.Chart.parse_cell "{B, C, G}" = None);
  check_bool "empty" true (Expt.Chart.parse_cell "" = None)

let test_chart_renders_series () =
  let table =
    Expt.Report.make ~id:"c" ~title:"chart" ~header:[ "x"; "A"; "B" ]
      [
        [ "1"; "10%"; "90%" ]; [ "2"; "20%"; "80%" ]; [ "3"; "30%"; "70%" ];
        [ "4"; "40%"; "60%" ];
      ]
  in
  match Expt.Chart.render table with
  | Some chart ->
      check_bool "legend names both series" true
        (contains chart "*=A" && contains chart "+=B");
      check_bool "x labels present" true (contains chart "1" && contains chart "4");
      check_bool "plot symbols present" true (contains chart "*" && contains chart "+")
  | None -> Alcotest.fail "expected a chart"

let test_chart_skips_unchartable () =
  let no_numbers =
    Expt.Report.make ~id:"n" ~title:"names" ~header:[ "x"; "jury" ]
      [ [ "1"; "{A}" ]; [ "2"; "{B}" ] ]
  in
  check_bool "no numeric column" true (Expt.Chart.render no_numbers = None);
  let one_row =
    Expt.Report.make ~id:"o" ~title:"one" ~header:[ "x"; "y" ] [ [ "1"; "2" ] ]
  in
  check_bool "single row" true (Expt.Chart.render one_row = None)

let test_chart_fig_tables_chartable () =
  (* Every MVJS-vs-OPTJS sweep should be chartable out of the box. *)
  let t = run_driver "fig10d" in
  check_bool "fig10d chartable" true (Expt.Chart.render t <> None)

(* ---- Ablations ------------------------------------------------------------ *)

let test_ablation_index () =
  check_int "9 ablations" 9 (List.length Expt.Ablations.ids);
  List.iter
    (fun id ->
      check_bool (id ^ " resolvable") true (Expt.Ablations.by_id id <> None))
    Expt.Ablations.ids;
  check_bool "unknown" true (Expt.Ablations.by_id "abl-nope" = None);
  (* Ablation ids must not collide with paper-artifact ids. *)
  List.iter
    (fun id -> check_bool (id ^ " distinct") true (Expt.Experiments.by_id id = None))
    Expt.Ablations.ids

let run_ablation id =
  match Expt.Ablations.by_id id with
  | Some driver -> driver ~config:tiny ()
  | None -> Alcotest.failf "unknown ablation %s" id

let test_ablation_smoke () =
  List.iter
    (fun id ->
      let t = run_ablation id in
      check_bool (id ^ " has rows") true (List.length t.Expt.Report.rows > 0);
      check_bool (id ^ " has header") true (List.length t.Expt.Report.header > 1))
    Expt.Ablations.ids

let test_ablation_ties_equal_at_half () =
  let t = run_ablation "abl-ties" in
  (* The alpha = 0.5 rows must show identical JQ across the three
     conventions (exact computation, same pools). *)
  List.iter
    (fun row ->
      match row with
      | alpha :: _ :: a :: b :: c :: _ when alpha = "0.5" ->
          check_bool "MV = MV-coin at 0.5" true (a = b);
          check_bool "MV = Half at 0.5" true (a = c)
      | _ -> ())
    t.Expt.Report.rows

let () =
  Alcotest.run "expt"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "updates" `Quick test_config_updates;
        ] );
      ( "series",
        [
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "independent streams" `Quick test_replicate_streams_independent;
          Alcotest.test_case "timed" `Quick test_timed;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "deterministic replication" `Quick
            test_parallel_replication_deterministic;
          Alcotest.test_case "exceptions" `Quick test_parallel_propagates_exception;
          Alcotest.test_case "validation" `Quick test_parallel_validation;
          test_map_array_matches_sequential;
          test_map_array_guided_matches_sequential;
          Alcotest.test_case "per-domain workspaces" `Quick
            test_map_array_uses_workspaces;
        ] );
      ( "restarts",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_restarts_parallel_identical;
          Alcotest.test_case "best dominates runs" `Quick test_restarts_best_dominates;
          Alcotest.test_case "cache totals" `Quick test_restarts_cache_totals;
          Alcotest.test_case "validation" `Quick test_restarts_validation;
        ] );
      ( "report",
        [
          Alcotest.test_case "cells" `Quick test_report_cells;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "csv escaping" `Quick test_report_csv_escaping;
          Alcotest.test_case "pp" `Quick test_report_pp_contains_rows;
          Alcotest.test_case "save csv" `Quick test_report_save_csv;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "index" `Quick test_ids_covered;
          Alcotest.test_case "fig1" `Quick test_fig1_rows;
          Alcotest.test_case "fig2" `Quick test_fig2_rows;
          Alcotest.test_case "fig6a smoke" `Slow test_fig6_shape;
          Alcotest.test_case "fig7a + tab3 smoke" `Slow test_fig7_and_tab3;
          Alcotest.test_case "fig8b smoke" `Slow test_fig8_shape;
          Alcotest.test_case "fig9 smoke" `Slow test_fig9_shapes;
          Alcotest.test_case "fig10d smoke" `Slow test_fig10d_shape;
        ] );
      ( "chart",
        [
          Alcotest.test_case "parse cells" `Quick test_chart_parse_cell;
          Alcotest.test_case "renders series" `Quick test_chart_renders_series;
          Alcotest.test_case "skips unchartable" `Quick test_chart_skips_unchartable;
          Alcotest.test_case "figure tables chartable" `Slow
            test_chart_fig_tables_chartable;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "index" `Quick test_ablation_index;
          Alcotest.test_case "smoke" `Slow test_ablation_smoke;
          Alcotest.test_case "ties equal at alpha 0.5" `Slow
            test_ablation_ties_equal_at_half;
        ] );
    ]
