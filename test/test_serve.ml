(* Tests for lib/serve: wire codec round-trips, registry versioning, the
   bounded queue, and the service end to end over a real TCP socket. *)

let qtest ?(count = 200) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ?print ~name gen prop)

module Wire = Serve.Wire

(* ---- generators ---------------------------------------------------- *)

let prob_gen = QCheck2.Gen.float_range 0. 1.
let cost_gen = QCheck2.Gen.float_range 0. 100.
let seed_gen = QCheck2.Gen.int_range 0 100_000
let buckets_gen = QCheck2.Gen.int_range 1 200
let name_gen = QCheck2.Gen.oneofl [ "default"; "pool-1"; "A_b.c"; "x9" ]

let list1 g = QCheck2.Gen.(int_range 1 6 >>= fun n -> list_size (return n) g)
let list0 g = QCheck2.Gen.(int_range 0 4 >>= fun n -> list_size (return n) g)

(* Normalized ℓ-vector priors, ℓ ∈ [2, 4]: positive weights scaled by their
   sum land within the codec's 1e-9 stochasticity tolerance. *)
let prior_gen =
  QCheck2.Gen.(
    int_range 2 4 >>= fun labels ->
    list_size (return labels) (float_range 0.1 1.) >>= fun weights ->
    let sum = List.fold_left ( +. ) 0. weights in
    return (List.map (fun w -> w /. sum) weights))

(* Diagonal-dominant row-stochastic ℓ×ℓ matrices: diagonal d, the rest
   spread evenly — rows sum to 1 up to a couple of ulp. *)
let matrix_of ~labels d =
  let off = (1. -. d) /. float_of_int (labels - 1) in
  Array.init labels (fun j ->
      Array.init labels (fun v -> if j = v then d else off))

let workers_gen =
  QCheck2.Gen.(
    oneof
      [
        ( list1 (pair prob_gen cost_gen) >>= fun rows ->
          return (List.map (fun (q, c) -> Wire.Scalar (q, c)) rows) );
        ( int_range 2 3 >>= fun labels ->
          list1 (pair prob_gen cost_gen) >>= fun rows ->
          return
            (List.map
               (fun (d, c) -> Wire.Matrix_row (matrix_of ~labels d, c))
               rows) );
      ])

let report_vote_gen =
  QCheck2.Gen.(
    int_range 0 500 >>= fun task ->
    int_range 0 100 >>= fun worker ->
    int_range 0 3 >>= fun label ->
    option (int_range 0 3) >>= fun truth ->
    return { Workers.Calib.task; worker; label; truth })

let request_gen =
  QCheck2.Gen.(
    oneof
      [
        return Wire.Ping;
        return Wire.Pool_list;
        return Wire.Stats;
        ( list1 prob_gen >>= fun qs ->
          prior_gen >>= fun prior ->
          buckets_gen >>= fun num_buckets ->
          return (Wire.Jq { source = Wire.Inline qs; prior; num_buckets }) );
        ( name_gen >>= fun name ->
          prior_gen >>= fun prior ->
          buckets_gen >>= fun num_buckets ->
          return (Wire.Jq { source = Wire.Named name; prior; num_buckets }) );
        ( name_gen >>= fun pool ->
          cost_gen >>= fun budget ->
          prior_gen >>= fun prior ->
          seed_gen >>= fun seed ->
          return (Wire.Select { pool; budget; prior; seed }) );
        ( name_gen >>= fun pool ->
          list1 cost_gen >>= fun budgets ->
          prior_gen >>= fun prior ->
          seed_gen >>= fun seed ->
          return (Wire.Table { pool; budgets; prior; seed }) );
        ( name_gen >>= fun name ->
          workers_gen >>= fun workers ->
          return (Wire.Pool_put { name; workers }) );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          prior_gen >>= fun prior ->
          cost_gen >>= fun budget ->
          float_range 0.6 1. >>= fun confidence ->
          float_range 0. 1. >>= fun gain_floor ->
          oneofl Session.Policy.all >>= fun policy ->
          return
            (Wire.Session_open
               { pool; task; prior; budget; confidence; gain_floor; policy })
        );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          int_range 0 100 >>= fun worker ->
          int_range 0 3 >>= fun label ->
          return (Wire.Session_vote { pool; task; worker; label }) );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          int_range 1 5 >>= fun k ->
          return (Wire.Session_advise { pool; task; k }) );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          option (int_range 0 3) >>= fun truth ->
          return (Wire.Session_decide { pool; task; truth }) );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          return (Wire.Session_close { pool; task }) );
        ( name_gen >>= fun pool ->
          list_size (int_range 1 8) report_vote_gen >>= fun votes ->
          return (Wire.Report { pool; votes }) );
        (name_gen >>= fun pool -> return (Wire.Quality { pool }));
        (name_gen >>= fun pool -> return (Wire.Recal { pool }));
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          prior_gen >>= fun prior ->
          cost_gen >>= fun budget ->
          int_range 0 3 >>= fun tier ->
          float_range 0. 1. >>= fun target ->
          return (Wire.Fleet_submit { pool; task; prior; budget; tier; target })
        );
        ( name_gen >>= fun pool ->
          option name_gen >>= fun task ->
          return (Wire.Fleet_status { pool; task }) );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          bool >>= fun decided ->
          return (Wire.Fleet_release { pool; task; decided }) );
      ])

let error_code_gen =
  QCheck2.Gen.oneofl
    [
      Wire.Bad_request; Wire.Unknown_pool; Wire.Unknown_session;
      Wire.Unknown_task; Wire.Overload; Wire.Deadline; Wire.Shutdown;
      Wire.Internal;
    ]

let stats_gen =
  QCheck2.Gen.(
    let keys = [ "cache_hit_rate"; "p50_ms"; "req_jq"; "requests"; "uptime_s" ] in
    int_range 0 (List.length keys) >>= fun k ->
    list_size
      (return (List.length keys))
      (float_range 0. 1e6)
    >>= fun vs ->
    return (List.filteri (fun i _ -> i < k) (List.combine keys vs)))

let row_gen =
  QCheck2.Gen.(
    cost_gen >>= fun budget ->
    list0 (int_range 0 500) >>= fun ids ->
    prob_gen >>= fun quality ->
    cost_gen >>= fun required ->
    return { Wire.budget; ids; quality; required })

let response_gen =
  QCheck2.Gen.(
    oneof
      [
        return Wire.Pong;
        ( prob_gen >>= fun value ->
          cost_gen >>= fun error_bound ->
          int_range 0 1000 >>= fun n ->
          return (Wire.Jq_result { value; error_bound; n }) );
        ( list0 (int_range 0 500) >>= fun ids ->
          prob_gen >>= fun score ->
          cost_gen >>= fun cost ->
          return (Wire.Select_result { ids; score; cost }) );
        (list0 row_gen >>= fun rows -> return (Wire.Table_result rows));
        ( name_gen >>= fun name ->
          int_range 1 1000 >>= fun version ->
          int_range 0 1000 >>= fun size ->
          return (Wire.Pool_info { name; version; size }) );
        ( list0 (triple name_gen (int_range 1 1000) (int_range 0 1000))
        >>= fun entries -> return (Wire.Pool_entries entries) );
        (stats_gen >>= fun stats -> return (Wire.Stats_result stats));
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          oneofl
            [ Wire.Sess_open; Wire.Sess_decided; Wire.Sess_exhausted;
              Wire.Sess_closed ]
          >>= fun state ->
          prior_gen >>= fun posterior ->
          int_range 0 50 >>= fun votes ->
          cost_gen >>= fun spent ->
          option (int_range 0 100) >>= fun next ->
          list0 (int_range 0 100) >>= fun advice ->
          option (int_range 0 3) >>= fun decision ->
          bool >>= fun certified ->
          option (oneofl Session.Stopping.all_reasons) >>= fun reason ->
          return
            (Wire.Session_result
               {
                 pool; task; state; posterior; votes; spent; next; advice;
                 decision; certified; reason;
               }) );
        ( name_gen >>= fun name ->
          int_range 1 1000 >>= fun version ->
          int_range 0 200 >>= fun applied ->
          int_range 0 200 >>= fun pending ->
          list0 (int_range 0 100) >>= fun drifted ->
          bool >>= fun stale ->
          int_range 0 8 >>= fun recals ->
          return
            (Wire.Report_result
               { name; version; applied; pending; drifted; stale; recals }) );
        ( name_gen >>= fun name ->
          int_range 1 1000 >>= fun version ->
          list0 (triple (int_range 0 100) prob_gen (int_range 0 500))
          >>= fun workers ->
          return (Wire.Quality_result { name; version; workers }) );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          list0 (int_range 0 500) >>= fun jury ->
          prob_gen >>= fun score ->
          cost_gen >>= fun cost ->
          int_range 0 3 >>= fun tier ->
          return (Wire.Fleet_task { pool; task; jury; score; cost; tier }) );
        ( name_gen >>= fun pool ->
          int_range 1 1000 >>= fun version ->
          int_range 0 1000 >>= fun epoch ->
          int_range 0 1000 >>= fun tasks ->
          int_range 0 1000 >>= fun assigned ->
          int_range 0 1000 >>= fun claimed ->
          int_range 0 1000 >>= fun priced ->
          float_range (-10.) 1000. >>= fun aggregate ->
          return
            (Wire.Fleet_summary
               { pool; version; epoch; tasks; assigned; claimed; priced;
                 aggregate }) );
        ( name_gen >>= fun pool ->
          name_gen >>= fun task ->
          int_range 0 100 >>= fun freed ->
          return (Wire.Fleet_released { pool; task; freed }) );
        ( error_code_gen >>= fun code ->
          string >>= fun message ->
          return (Wire.Error { code; message }) );
      ])

(* ---- wire codec ----------------------------------------------------- *)

let codec_props =
  [
    qtest "request round-trips" ~print:Wire.encode_request request_gen
      (fun request ->
        Wire.decode_request (Wire.encode_request request) = Ok request);
    qtest "response round-trips" ~print:Wire.encode_response response_gen
      (fun response ->
        Wire.decode_response (Wire.encode_response response) = Ok response);
    qtest ~count:500 "decode_request never raises" QCheck2.Gen.string (fun s ->
        match Wire.decode_request s with Ok _ | Error _ -> true);
    qtest ~count:500 "decode_response never raises" QCheck2.Gen.string (fun s ->
        match Wire.decode_response s with Ok _ | Error _ -> true);
  ]

let check_decode name line expected =
  Alcotest.test_case name `Quick (fun () ->
      match (Wire.decode_request line, expected) with
      | Ok got, Some want ->
          Alcotest.(check string) name (Wire.encode_request want)
            (Wire.encode_request got)
      | Error _, None -> ()
      | Ok got, None ->
          Alcotest.failf "%s: expected a parse error, got %s" name
            (Wire.encode_request got)
      | Error e, Some _ -> Alcotest.failf "%s: unexpected error %s" name e)

let codec_units =
  [
    check_decode "defaults fill in" "jq q=0.25,0.75"
      (Some
         (Wire.Jq
            {
              source = Wire.Inline [ 0.25; 0.75 ];
              prior = Wire.default_prior;
              num_buckets = Jq.Bucket.default_num_buckets;
            }));
    check_decode "trailing CR tolerated" "ping\r" (Some Wire.Ping);
    check_decode "repeated spaces tolerated" "select  pool=p   budget=4"
      (Some
         (Wire.Select
            { pool = "p"; budget = 4.; prior = Wire.default_prior; seed = 42 }));
    check_decode "alpha is prior sugar" "select pool=p budget=4 alpha=0.3"
      (Some
         (Wire.Select
            { pool = "p"; budget = 4.; prior = [ 0.3; 1. -. 0.3 ]; seed = 42 }));
    check_decode "3-label prior accepted" "select pool=p budget=4 prior=0.2,0.5,0.3"
      (Some
         (Wire.Select
            { pool = "p"; budget = 4.; prior = [ 0.2; 0.5; 0.3 ]; seed = 42 }));
    check_decode "prior and alpha exclusive"
      "select pool=p budget=4 prior=0.5,0.5 alpha=0.5" None;
    check_decode "prior must sum to 1" "jq q=0.5 prior=0.4,0.4" None;
    check_decode "single-entry prior rejected" "jq q=0.5 prior=1" None;
    check_decode "matrix pool rows"
      "pool-put name=m workers=0.8;0.2;0.2;0.8:3,0.5;0.5;0.5;0.5:1"
      (Some
         (Wire.Pool_put
            {
              name = "m";
              workers =
                [
                  Wire.Matrix_row ([| [| 0.8; 0.2 |]; [| 0.2; 0.8 |] |], 3.);
                  Wire.Matrix_row ([| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |], 1.);
                ];
            }));
    check_decode "mixed worker kinds rejected"
      "pool-put name=m workers=0.8:1,0.8;0.2;0.2;0.8:3" None;
    check_decode "matrix label counts must agree"
      "pool-put name=m \
       workers=0.8;0.2;0.2;0.8:1,0.8;0.1;0.1;0.1;0.8;0.1;0.1;0.1;0.8:1"
      None;
    check_decode "non-square matrix rejected"
      "pool-put name=m workers=0.8;0.2;0.2;0.8;0.5:1" None;
    check_decode "non-stochastic matrix row rejected"
      "pool-put name=m workers=0.8;0.8;0.2;0.8:1" None;
    check_decode "duplicate key rejected" "jq q=0.5 q=0.6" None;
    check_decode "unknown key rejected" "jq q=0.5 frob=1" None;
    check_decode "quality out of range" "jq q=1.5" None;
    check_decode "nan budget rejected" "select pool=p budget=nan" None;
    check_decode "negative budget rejected" "select pool=p budget=-1" None;
    check_decode "bad pool name" "select pool=a*b budget=1" None;
    check_decode "empty line" "" None;
    check_decode "unknown verb" "bogus" None;
    check_decode "missing mandatory field" "select pool=p" None;
    check_decode "empty budgets rejected" "table pool=p budgets=-" None;
    check_decode "fleet-submit defaults fill in"
      "fleet-submit pool=p task=t1 prior=0.3,0.7 budget=6"
      (Some
         (Wire.Fleet_submit
            {
              pool = "p"; task = "t1"; prior = [ 0.3; 0.7 ]; budget = 6.;
              tier = 0; target = 0.;
            }));
    check_decode "fleet-status without task is a summary"
      "fleet-status pool=p"
      (Some (Wire.Fleet_status { pool = "p"; task = None }));
    check_decode "fleet-release decide flag"
      "fleet-release pool=p task=t1 decide=1"
      (Some (Wire.Fleet_release { pool = "p"; task = "t1"; decided = true }));
    check_decode "fleet-submit bad task name"
      "fleet-submit pool=p task=a*b prior=0.3,0.7 budget=6" None;
    check_decode "fleet-submit negative tier rejected"
      "fleet-submit pool=p task=t prior=0.3,0.7 budget=6 tier=-1" None;
    check_decode "fleet-release bad flag"
      "fleet-release pool=p task=t decide=yes" None;
    Alcotest.test_case "valid_pool_name" `Quick (fun () ->
        Alcotest.(check bool) "ok" true (Wire.valid_pool_name "A_b.c-9");
        Alcotest.(check bool) "empty" false (Wire.valid_pool_name "");
        Alcotest.(check bool) "space" false (Wire.valid_pool_name "a b");
        Alcotest.(check bool) "long" false
          (Wire.valid_pool_name (String.make 65 'a')));
  ]

(* ---- registry -------------------------------------------------------- *)

let pool_of_qualities qs =
  Engine.Pool.of_workers
    (Workers.Pool.of_list
       (List.mapi
          (fun id q -> Workers.Worker.make ~id ~quality:q ~cost:1. ())
          qs))

let registry_tests =
  [
    Alcotest.test_case "versions strictly increase" `Quick (fun () ->
        let r = Serve.Registry.create () in
        let v1 = Serve.Registry.upsert r ~name:"a" (pool_of_qualities [ 0.6 ]) in
        let v2 = Serve.Registry.upsert r ~name:"b" (pool_of_qualities [ 0.7 ]) in
        let v3 =
          Serve.Registry.upsert r ~name:"a" (pool_of_qualities [ 0.6; 0.8 ])
        in
        Alcotest.(check bool) "v1 < v2" true (v1 < v2);
        Alcotest.(check bool) "v2 < v3" true (v2 < v3);
        (match Serve.Registry.find r "a" with
        | Some (pool, v) ->
            Alcotest.(check int) "latest version" v3 v;
            Alcotest.(check int) "latest size" 2 (Engine.Pool.size pool)
        | None -> Alcotest.fail "pool a missing");
        Alcotest.(check (option (pair reject int)))
          "unknown pool" None
          (Serve.Registry.find r "nope");
        Alcotest.(check (list (triple string int int)))
          "list sorted"
          [ ("a", v3, 2); ("b", v2, 1) ]
          (Serve.Registry.list r);
        Alcotest.(check int) "size" 2 (Serve.Registry.size r));
  ]

(* ---- shard queue and dispatcher --------------------------------------- *)

let jq_alike a b = match (a, b) with `Jq _, `Jq _ -> true | _ -> false

let bqueue_tests =
  [
    Alcotest.test_case "admission control and FIFO batching" `Quick (fun () ->
        let q = Serve.Bqueue.create ~capacity:3 in
        let pushed x =
          match Serve.Bqueue.push q x with
          | Serve.Bqueue.Pushed _ -> true
          | Serve.Bqueue.Full | Serve.Bqueue.Closed -> false
        in
        Alcotest.(check bool) "push 1" true (pushed (`Jq 1));
        Alcotest.(check bool) "push 2" true (pushed (`Jq 2));
        Alcotest.(check bool) "push 3" true (pushed (`Sel 3));
        Alcotest.(check bool) "full" false (pushed (`Jq 4));
        Alcotest.(check bool)
          "full is Full" true
          (Serve.Bqueue.push q (`Jq 4) = Serve.Bqueue.Full);
        Alcotest.(check int) "length" 3 (Serve.Bqueue.length q);
        (* The two jq items coalesce; draining stops at the `Sel. *)
        (match Serve.Bqueue.pop_batch q ~max:8 ~compatible:jq_alike with
        | `Batch batch -> Alcotest.(check int) "batch size" 2 (List.length batch)
        | `Invited | `Closed -> Alcotest.fail "expected a batch");
        Serve.Bqueue.close q;
        Alcotest.(check bool)
          "closed refuses" true
          (Serve.Bqueue.push q (`Jq 5) = Serve.Bqueue.Closed);
        (match Serve.Bqueue.pop_batch q ~max:8 ~compatible:jq_alike with
        | `Batch [ `Sel 3 ] -> ()
        | `Batch _ -> Alcotest.fail "wrong drain"
        | `Invited | `Closed -> Alcotest.fail "queued item lost on close");
        (match Serve.Bqueue.pop_batch q ~max:8 ~compatible:jq_alike with
        | `Closed -> ()
        | `Batch _ | `Invited -> Alcotest.fail "expected `Closed after drain"));
    Alcotest.test_case "invitations latch and are consumed" `Quick (fun () ->
        let q = Serve.Bqueue.create ~capacity:2 in
        Serve.Bqueue.invite q;
        (* An invite queued while the owner was busy is seen at the next
           idle pop, then consumed. *)
        (match Serve.Bqueue.pop_batch q ~max:4 ~compatible:jq_alike with
        | `Invited -> ()
        | `Batch _ | `Closed -> Alcotest.fail "expected `Invited");
        ignore (Serve.Bqueue.push q (`Jq 1));
        (* Queued work takes priority over a pending invitation... *)
        Serve.Bqueue.invite q;
        (match Serve.Bqueue.pop_batch q ~max:4 ~compatible:jq_alike with
        | `Batch [ `Jq 1 ] -> ()
        | _ -> Alcotest.fail "expected the queued item first");
        (* ... and the latched invitation is still there afterwards. *)
        (match Serve.Bqueue.pop_batch q ~max:4 ~compatible:jq_alike with
        | `Invited -> ()
        | `Batch _ | `Closed -> Alcotest.fail "invitation was lost");
        Serve.Bqueue.close q);
    Alcotest.test_case "steal takes a bounded front run" `Quick (fun () ->
        let q = Serve.Bqueue.create ~capacity:8 in
        List.iter
          (fun x -> ignore (Serve.Bqueue.push q x))
          [ `Jq 1; `Jq 2; `Jq 3; `Sel 4; `Jq 5 ];
        Alcotest.(check int)
          "bounded" 2
          (List.length (Serve.Bqueue.steal q ~max:2 ~compatible:jq_alike));
        (match Serve.Bqueue.steal q ~max:8 ~compatible:jq_alike with
        | [ `Jq 3 ] -> ()  (* run stops at the incompatible `Sel *)
        | _ -> Alcotest.fail "steal should stop at the first incompatible");
        Serve.Bqueue.close q;
        Alcotest.(check int)
          "stealable after close" 2
          (List.length
             (Serve.Bqueue.steal q ~max:8 ~compatible:(fun _ _ -> true))));
  ]

(* The regression the old global queue pinned and the sharded dispatcher
   must preserve: same-pool jobs enqueued contiguously still coalesce
   into one batch, and an odd-pool job at the head only delays — never
   permanently defeats — the batch behind it. *)
let dispatch_batching_test () =
  let d = Serve.Dispatch.create ~shards:2 ~capacity:16 in
  (* One affinity value: everything lands on the same shard, like
     same-pool traffic does. *)
  let aff = 7 in
  List.iter
    (fun x -> ignore (Serve.Dispatch.push d ~affinity:aff x))
    [ `Sel 0; `Jq 1; `Jq 2; `Jq 3; `Sel 4; `Jq 5; `Jq 6 ];
  let shard = abs (aff mod 2) in
  let pop () =
    match Serve.Dispatch.pop_batch d ~shard ~max:8 ~compatible:jq_alike with
    | Some (batch, _) -> batch
    | None -> Alcotest.fail "unexpected close"
  in
  Alcotest.(check int) "head sel alone" 1 (List.length (pop ()));
  (match pop () with
  | [ `Jq 1; `Jq 2; `Jq 3 ] -> ()
  | batch ->
      Alcotest.failf "contiguous jq run did not batch (got %d items)"
        (List.length batch));
  Alcotest.(check int) "next sel alone" 1 (List.length (pop ()));
  (match pop () with
  | [ `Jq 5; `Jq 6 ] -> ()
  | _ -> Alcotest.fail "trailing jq run did not batch");
  Serve.Dispatch.close d;
  Alcotest.(check bool)
    "drained" true
    (Serve.Dispatch.pop_batch d ~shard ~max:8 ~compatible:jq_alike = None)

(* Single-threaded close-drains check including the steal path: items
   stuck on a neighbour's shard are still handed out after close. *)
let dispatch_close_drains_test () =
  let d = Serve.Dispatch.create ~shards:3 ~capacity:30 in
  for i = 0 to 9 do
    match Serve.Dispatch.push d ~affinity:0 (`Jq i) with
    | `Ok -> ()
    | `Overload | `Closed -> Alcotest.fail "push refused below capacity"
  done;
  Serve.Dispatch.close d;
  Alcotest.(check bool)
    "push after close" true
    (Serve.Dispatch.push d ~affinity:0 (`Jq 99) = `Closed);
  let drained = ref 0 in
  for shard = 0 to 2 do
    let rec drain () =
      match
        Serve.Dispatch.pop_batch d ~shard ~max:4 ~compatible:(fun _ _ -> false)
      with
      | Some (batch, _) ->
          drained := !drained + List.length batch;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  Alcotest.(check int) "close drains everything" 10 !drained

(* Concurrent producers + per-shard owner threads + stealing: every
   accepted item is delivered exactly once, and close drains the rest.
   Skewed affinities force the invite/steal path; spill is exercised by
   the small capacity. *)
let dispatch_qcheck =
  let gen =
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 4 64) (int_range 1 3) >>= fun (s, n, skew) ->
      return (s, n, skew))
  in
  qtest ~count:30 "dispatch: no item lost or duplicated"
    ~print:(fun (s, n, skew) ->
      Printf.sprintf "shards=%d items=%d skew=%d" s n skew)
    gen
    (fun (shards, n_items, skew) ->
      let d = Serve.Dispatch.create ~shards ~capacity:8 in
      let compatible a b = a mod 3 = b mod 3 in
      let accepted = Array.make 4 [] in
      let producer p =
        for i = 0 to n_items - 1 do
          let item = (p * 10_000) + i in
          (* Affinity skew 1 funnels everything to one shard. *)
          let affinity = item mod skew in
          let rec push_retry tries =
            match Serve.Dispatch.push d ~affinity item with
            | `Ok -> accepted.(p) <- item :: accepted.(p)
            | `Overload when tries < 200 ->
                Thread.delay 0.0002;
                push_retry (tries + 1)
            | `Overload | `Closed -> ()
          in
          push_retry 0
        done
      in
      let consumed = Array.make shards [] in
      let owner shard =
        let rec loop () =
          match Serve.Dispatch.pop_batch d ~shard ~max:4 ~compatible with
          | Some (batch, _) ->
              consumed.(shard) <- List.rev_append batch consumed.(shard);
              loop ()
          | None -> ()
        in
        loop ()
      in
      let owners = List.init shards (fun s -> Thread.create owner s) in
      let producers = List.init 4 (fun p -> Thread.create producer p) in
      List.iter Thread.join producers;
      Serve.Dispatch.close d;
      List.iter Thread.join owners;
      let sent = List.sort compare (List.concat (Array.to_list accepted)) in
      let got = List.sort compare (List.concat (Array.to_list consumed)) in
      sent = got)

let dispatch_tests =
  [
    Alcotest.test_case "contiguous same-pool jobs still batch" `Quick
      dispatch_batching_test;
    Alcotest.test_case "close drains all shards (steal path)" `Quick
      dispatch_close_drains_test;
    dispatch_qcheck;
  ]

(* ---- metrics shard merge ---------------------------------------------- *)

(* Oracle: replay the same event stream into one set of plain
   accumulators; the sharded snapshot must report identical totals
   whatever shard each event landed on. *)
let metrics_event_gen =
  QCheck2.Gen.(
    let verb = oneofl [ "jq"; "select"; "table"; "ping" ] in
    oneof
      [
        ( verb >>= fun v ->
          float_range 0. 0.5 >>= fun lat ->
          bool >>= fun ok -> return (`Record (v, lat, ok)) );
        return `Overload;
        return `Deadline;
        (int_range 2 6 >>= fun size -> return (`Batch size));
        return `Jq_memo_hit;
        return `Steal;
        (float_range 100. 5e6 >>= fun ns -> return (`Jq_eval ns));
        (int_range 0 3 >>= fun count -> return (`Flat_fallback count));
        (float_range 100. 5e6 >>= fun ns -> return (`Session_verb ns));
      ])

(* Per-shard session-store counter snapshots, registered as pull sources:
   the merged snapshot must report their componentwise sums. *)
let session_stats_gen =
  QCheck2.Gen.(
    int_range 0 20 >>= fun open_now ->
    int_range 0 20 >>= fun opened ->
    int_range 0 20 >>= fun decided ->
    int_range 0 20 >>= fun expired ->
    int_range 0 20 >>= fun invalidated ->
    int_range 0 20 >>= fun rejected ->
    return
      { Session.Store.open_now; opened; decided; expired; invalidated;
        rejected })

let metrics_merge_qcheck =
  let gen =
    QCheck2.Gen.(
      triple (int_range 1 4)
        (list_size (int_range 0 200) metrics_event_gen)
        (list_size (int_range 0 3) session_stats_gen))
  in
  qtest ~count:60 "metrics: sharded snapshot equals single-lock oracle" gen
    (fun (shards, events, session_sources) ->
      let m = Serve.Metrics.create ~shards () in
      let requests = ref 0 and ok = ref 0 and errors = ref 0 in
      let overloads = ref 0 and deadlines = ref 0 in
      let batches = ref 0 and batched_saved = ref 0 in
      let jq_memo_hits = ref 0 and steals = ref 0 in
      let jq_flat_fallbacks = ref 0 in
      let jq_ns = ref [] in
      let session_ns = ref [] in
      let per_verb = Hashtbl.create 8 in
      (* Deterministic-but-spread shard choice for executor-side events. *)
      let shard_of i = i mod shards in
      List.iteri
        (fun i event ->
          match event with
          | `Record (verb, latency, okay) ->
              Serve.Metrics.record m ~shard:(shard_of i) ~verb ~latency
                ~ok:okay;
              incr requests;
              if okay then incr ok else incr errors;
              Hashtbl.replace per_verb verb
                (1 + Option.value ~default:0 (Hashtbl.find_opt per_verb verb))
          | `Overload ->
              Serve.Metrics.overload m;
              incr overloads;
              incr requests;
              incr errors
          | `Deadline ->
              Serve.Metrics.deadline m ~shard:(shard_of i);
              incr deadlines
          | `Batch size ->
              Serve.Metrics.batch m ~shard:(shard_of i) ~size;
              incr batches;
              batched_saved := !batched_saved + size - 1
          | `Jq_memo_hit ->
              Serve.Metrics.jq_memo_hit m ~shard:(shard_of i);
              incr jq_memo_hits
          | `Steal ->
              Serve.Metrics.steal m ~shard:(shard_of i);
              incr steals
          | `Jq_eval ns ->
              Serve.Metrics.jq_eval m ~shard:(shard_of i) ~ns;
              jq_ns := ns :: !jq_ns
          | `Flat_fallback count ->
              (* count = 0 must be a no-op, matching the recorder's
                 contract for calls on the all-flat fast path. *)
              Serve.Metrics.jq_flat_fallback m ~shard:(shard_of i) ~count;
              jq_flat_fallbacks := !jq_flat_fallbacks + max 0 count
          | `Session_verb ns ->
              Serve.Metrics.session_verb m ~shard:(shard_of i) ~ns;
              session_ns := ns :: !session_ns)
        events;
      List.iter
        (fun stats -> Serve.Metrics.add_sessions m ~stats:(fun () -> stats))
        session_sources;
      let session_total =
        List.fold_left Session.Store.add_stats Session.Store.zero_stats
          session_sources
      in
      let snap = Serve.Metrics.snapshot m in
      let get key = Option.value ~default:0. (List.assoc_opt key snap) in
      let eq key want = get key = float_of_int want in
      eq "requests" !requests && eq "ok" !ok && eq "errors" !errors
      && eq "overloads" !overloads
      && eq "deadlines" !deadlines
      && eq "batches" !batches
      && eq "batched_saved" !batched_saved
      && eq "jq_memo_hits" !jq_memo_hits
      && eq "steals" !steals
      && eq "jq_evals" (List.length !jq_ns)
      && eq "jq_flat_fallbacks" !jq_flat_fallbacks
      && eq "session_verbs" (List.length !session_ns)
      && (let samples = Array.of_list !jq_ns in
          if Array.length samples = 0 then
            List.assoc_opt "jq_eval_ns_p50" snap = None
          else
            List.for_all
              (fun (key, p) -> get key = Prob.Stats.quantile samples p)
              [
                ("jq_eval_ns_p50", 0.5);
                ("jq_eval_ns_p95", 0.95);
                ("jq_eval_ns_p99", 0.99);
              ])
      && (let samples = Array.of_list !session_ns in
          if Array.length samples = 0 then
            List.assoc_opt "session_verb_ns_p50" snap = None
          else
            List.for_all
              (fun (key, p) -> get key = Prob.Stats.quantile samples p)
              [
                ("session_verb_ns_p50", 0.5);
                ("session_verb_ns_p95", 0.95);
                ("session_verb_ns_p99", 0.99);
              ])
      && eq "sessions_open" session_total.Session.Store.open_now
      && eq "sessions_opened" session_total.Session.Store.opened
      && eq "sessions_decided" session_total.Session.Store.decided
      && eq "sessions_expired" session_total.Session.Store.expired
      && eq "sessions_invalidated" session_total.Session.Store.invalidated
      && eq "sessions_rejected" session_total.Session.Store.rejected
      && Hashtbl.fold
           (fun verb n acc -> acc && eq ("req_" ^ verb) n)
           per_verb true)

let metrics_tests = [ metrics_merge_qcheck ]

(* ---- service over TCP ------------------------------------------------- *)

let with_server ?deadline ?calib_config ~domains ~queue_capacity f =
  let service =
    Serve.Service.create ?deadline ?calib_config ~domains ~queue_capacity ()
  in
  let server = Serve.Server.create ~port:0 service in
  Serve.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Service.shutdown service)
    (fun () -> f service (Serve.Server.port server))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let roundtrip ic oc request =
  output_string oc (Wire.encode_request request);
  output_char oc '\n';
  flush oc;
  match Wire.decode_response (input_line ic) with
  | Ok response -> response
  | Error e -> Alcotest.failf "undecodable reply: %s" e

let test_pool n =
  Workers.Generator.gaussian_pool (Prob.Rng.create 7) Workers.Generator.default
    n

let wire_workers pool =
  List.map
    (fun w -> Wire.Scalar (Workers.Worker.quality w, Workers.Worker.cost w))
    (Workers.Pool.to_list pool)

let check_response name expected actual =
  Alcotest.(check string)
    name
    (Wire.encode_response expected)
    (Wire.encode_response actual)

(* Concurrent mixed queries over TCP must equal direct library calls:
   responses are deterministic functions of (pool, request) regardless of
   which executor answers or how warm its caches are. *)
let integration_test () =
  let pool = test_pool 12 in
  let qualities = Workers.Pool.qualities pool in
  let buckets = Jq.Bucket.default_num_buckets in
  let expected_jq_pool =
    let inc = Jq.Incremental.create ~num_buckets:buckets ~alpha:0.5 () in
    Array.iter (Jq.Incremental.add_worker inc) qualities;
    Wire.Jq_result
      {
        value = Jq.Incremental.value inc;
        error_bound = Jq.Incremental.error_bound inc;
        n = Workers.Pool.size pool;
      }
  in
  let inline_qs = Array.to_list (Array.sub qualities 0 5) in
  let expected_jq_inline =
    let stats =
      Jq.Bucket.estimate_stats ~num_buckets:buckets ~alpha:0.5
        (Array.of_list inline_qs)
    in
    Wire.Jq_result
      {
        value = stats.Jq.Bucket.value;
        error_bound = stats.Jq.Bucket.error_bound;
        n = 5;
      }
  in
  let expected_select ~budget ~seed =
    let result =
      Jsp.Annealing.solve_optjs ~num_buckets:buckets
        ~rng:(Prob.Rng.create seed) ~alpha:0.5 ~budget pool
    in
    Wire.Select_result
      {
        ids = List.map Workers.Worker.id (Workers.Pool.to_list result.jury);
        score = result.score;
        cost = Workers.Pool.total_cost result.jury;
      }
  in
  let expected_table ~budgets ~seed =
    Wire.Table_result
      (List.map
         (fun budget ->
           match expected_select ~budget ~seed with
           | Wire.Select_result { ids; score; cost } ->
               { Wire.budget; ids; quality = score; required = cost }
           | _ -> assert false)
         budgets)
  in
  with_server ~domains:4 ~queue_capacity:64 (fun service port ->
      (let fd, ic, oc = connect port in
       (match
          roundtrip ic oc
            (Wire.Pool_put { name = "itest"; workers = wire_workers pool })
        with
       | Wire.Pool_info { name = "itest"; size = 12; _ } -> ()
       | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
       Unix.close fd);
      let failures = Array.make 4 None in
      let client i =
        try
          let fd, ic, oc = connect port in
          let seed = 3 + i in
          for _round = 1 to 3 do
            check_response "ping" Wire.Pong (roundtrip ic oc Wire.Ping);
            check_response "jq pool" expected_jq_pool
              (roundtrip ic oc
                 (Wire.Jq
                    {
                      source = Wire.Named "itest";
                      prior = Wire.default_prior;
                      num_buckets = buckets;
                    }));
            check_response "jq inline" expected_jq_inline
              (roundtrip ic oc
                 (Wire.Jq
                    {
                      source = Wire.Inline inline_qs;
                      prior = Wire.default_prior;
                      num_buckets = buckets;
                    }));
            check_response "select" (expected_select ~budget:12. ~seed)
              (roundtrip ic oc
                 (Wire.Select
                    { pool = "itest"; budget = 12.; prior = Wire.default_prior; seed }));
            check_response "table" (expected_table ~budgets:[ 6.; 12. ] ~seed:5)
              (roundtrip ic oc
                 (Wire.Table
                    {
                      pool = "itest";
                      budgets = [ 6.; 12. ];
                      prior = Wire.default_prior;
                      seed = 5;
                    }))
          done;
          Unix.close fd
        with exn -> failures.(i) <- Some (Printexc.to_string exn)
      in
      let threads = List.init 4 (fun i -> Thread.create client i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i failure ->
          match failure with
          | Some msg -> Alcotest.failf "client %d: %s" i msg
          | None -> ())
        failures;
      (* Repeated same-pool select load must surface a warm hit-rate. *)
      let stats = Serve.Service.stats service in
      let stat key =
        match List.assoc_opt key stats with
        | Some v -> v
        | None -> Alcotest.failf "stats: missing %s" key
      in
      Alcotest.(check bool) "cache hits observed" true (stat "cache_hits" > 0.);
      Alcotest.(check bool)
        "cache hit-rate positive" true
        (stat "cache_hit_rate" > 0.);
      Alcotest.(check bool) "unknown pool is an error" true
        (let fd, ic, oc = connect port in
         let reply =
           roundtrip ic oc
             (Wire.Select { pool = "nope"; budget = 5.; prior = Wire.default_prior; seed = 1 })
         in
         Unix.close fd;
         match reply with
         | Wire.Error { code = Wire.Unknown_pool; _ } -> true
         | _ -> false);
      (* A malformed line costs one [err bad-request] reply, not the
         connection. *)
      let fd, ic, oc = connect port in
      output_string oc "select pool=itest budget=squid\n";
      flush oc;
      (match Wire.decode_response (input_line ic) with
      | Ok (Wire.Error { code = Wire.Bad_request; _ }) -> ()
      | Ok r -> Alcotest.failf "bad line: %s" (Wire.encode_response r)
      | Error e -> Alcotest.failf "bad line: undecodable reply %s" e);
      check_response "connection survives" Wire.Pong (roundtrip ic oc Wire.Ping);
      Unix.close fd)

(* The multi-class mirror of [integration_test]: a 3-label confusion-matrix
   pool registered over TCP must answer jq/select/table byte-identically to
   direct engine calls, whatever the cache warmth (rounds 2-3 replay warm
   memos).  The expected pool is built from the very floats sent on the
   wire: Confusion.make normalizes rows, and normalization is not bitwise
   idempotent, so both sides must normalize exactly once from the same
   input. *)
let multiclass_integration_test () =
  let labels = 3 in
  let n = 10 in
  let raw =
    Array.init n (fun i ->
        let d = 0.5 +. (0.045 *. float_of_int i) in
        let off = (1. -. d) /. float_of_int (labels - 1) in
        let matrix =
          Array.init labels (fun j ->
              Array.init labels (fun v -> if j = v then d else off))
        in
        (matrix, 1. +. float_of_int (i mod 4)))
  in
  let rows =
    Array.to_list (Array.map (fun (m, c) -> Wire.Matrix_row (m, c)) raw)
  in
  let epool =
    Engine.Pool.of_confusions
      (Array.mapi
         (fun id (matrix, cost) -> Workers.Confusion.make ~id ~matrix ~cost ())
         raw)
  in
  let prior = [ 0.2; 0.5; 0.3 ] in
  let task = Engine.Task.make ~prior:(Array.of_list prior) in
  let buckets = Jq.Bucket.default_num_buckets in
  let expected_jq =
    (* The server answers matrix pools through the scored objective, so the
       oracle must reproduce both the value and the certified bound. *)
    let scored =
      Engine.Objective.bv_bucket_scored ~num_buckets:buckets () ~task epool
    in
    Wire.Jq_result
      {
        value = scored.Engine.Objective.score;
        error_bound = scored.Engine.Objective.bound;
        n;
      }
  in
  let expected_select ~budget ~seed =
    let result =
      Jsp.Annealing.solve_engine ~num_buckets:buckets
        ~rng:(Prob.Rng.create seed) ~task ~budget epool
    in
    Wire.Select_result
      {
        ids = Engine.Pool.ids result.Jsp.Solver.jury;
        score = result.Jsp.Solver.score;
        cost = Engine.Pool.total_cost result.Jsp.Solver.jury;
      }
  in
  let expected_table ~budgets ~seed =
    Wire.Table_result
      (List.map
         (fun budget ->
           match expected_select ~budget ~seed with
           | Wire.Select_result { ids; score; cost } ->
               { Wire.budget; ids; quality = score; required = cost }
           | _ -> assert false)
         budgets)
  in
  with_server ~domains:4 ~queue_capacity:64 (fun _service port ->
      (let fd, ic, oc = connect port in
       (match
          roundtrip ic oc (Wire.Pool_put { name = "m3"; workers = rows })
        with
       | Wire.Pool_info { name = "m3"; size = 10; _ } -> ()
       | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
       Unix.close fd);
      let failures = Array.make 3 None in
      let client i =
        try
          let fd, ic, oc = connect port in
          let seed = 11 + i in
          for _round = 1 to 3 do
            check_response "jq 3-label" expected_jq
              (roundtrip ic oc
                 (Wire.Jq
                    { source = Wire.Named "m3"; prior; num_buckets = buckets }));
            check_response "select 3-label" (expected_select ~budget:5. ~seed)
              (roundtrip ic oc
                 (Wire.Select { pool = "m3"; budget = 5.; prior; seed }));
            check_response "table 3-label"
              (expected_table ~budgets:[ 2.; 5. ] ~seed:13)
              (roundtrip ic oc
                 (Wire.Table
                    { pool = "m3"; budgets = [ 2.; 5. ]; prior; seed = 13 }))
          done;
          Unix.close fd
        with exn -> failures.(i) <- Some (Printexc.to_string exn)
      in
      let threads = List.init 3 (fun i -> Thread.create client i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i failure ->
          match failure with
          | Some msg -> Alcotest.failf "client %d: %s" i msg
          | None -> ())
        failures;
      (* A prior that disagrees with the pool's label count is a
         per-request error, not an executor crash. *)
      let fd, ic, oc = connect port in
      (match
         roundtrip ic oc
           (Wire.Select
              { pool = "m3"; budget = 5.; prior = Wire.default_prior; seed = 1 })
       with
      | Wire.Error { code = Wire.Bad_request; _ } -> ()
      | r -> Alcotest.failf "label mismatch: %s" (Wire.encode_response r));
      Unix.close fd)

(* Saturate a 1-domain, 1-slot service with slow selects: some submissions
   must be refused with [err overload] while ping stays responsive. *)
let overload_test () =
  let pool = test_pool 120 in
  with_server ~domains:1 ~queue_capacity:1 (fun service _port ->
      (match
         Serve.Service.submit service
           (Wire.Pool_put { name = "big"; workers = wire_workers pool })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      let overloads = Atomic.make 0 in
      let unexpected = Atomic.make 0 in
      let client i =
        for seed = 1 to 4 do
          match
            Serve.Service.submit service
              (Wire.Select
                 { pool = "big"; budget = 40.; prior = Wire.default_prior; seed = (10 * i) + seed })
          with
          | Wire.Select_result _ -> ()
          | Wire.Error { code = Wire.Overload; _ } -> Atomic.incr overloads
          | r ->
              Atomic.incr unexpected;
              Printf.eprintf "unexpected reply: %s\n" (Wire.encode_response r)
        done
      in
      let threads = List.init 8 (fun i -> Thread.create client i) in
      (* Control plane stays responsive while the queue is saturated. *)
      for _ = 1 to 5 do
        (match Serve.Service.submit service Wire.Ping with
        | Wire.Pong -> ()
        | r -> Alcotest.failf "ping under load: %s" (Wire.encode_response r));
        Thread.delay 0.01
      done;
      List.iter Thread.join threads;
      Alcotest.(check int) "no unexpected replies" 0 (Atomic.get unexpected);
      Alcotest.(check bool)
        "at least one overload" true
        (Atomic.get overloads > 0);
      let stats = Serve.Service.stats service in
      Alcotest.(check bool)
        "overloads counted" true
        (List.assoc "overloads" stats > 0.))

let shutdown_test () =
  let service = Serve.Service.create ~domains:1 ~queue_capacity:4 () in
  ignore
    (Serve.Service.submit service
       (Wire.Pool_put { name = "p"; workers = [ Wire.Scalar (0.8, 1.) ] }));
  Serve.Service.shutdown service;
  Serve.Service.shutdown service;
  (* idempotent *)
  (match
     Serve.Service.submit service
       (Wire.Select { pool = "p"; budget = 2.; prior = Wire.default_prior; seed = 1 })
   with
  | Wire.Error { code = Wire.Shutdown; _ } -> ()
  | r -> Alcotest.failf "post-shutdown select: %s" (Wire.encode_response r));
  match Serve.Service.submit service Wire.Ping with
  | Wire.Pong -> ()
  | r -> Alcotest.failf "post-shutdown ping: %s" (Wire.encode_response r)

(* ---- session verbs ---------------------------------------------------- *)

let session_open_request ~pool ~task =
  Wire.Session_open
    {
      pool;
      task;
      prior = Wire.default_prior;
      budget = 100.;
      confidence = 0.99;
      gain_floor = 0.;
      policy = Session.Policy.default;
    }

(* Drive one conversation — open, then (advise, vote label_of next)* until
   the session leaves [Sess_open], then close — returning every encoded
   reply line in order. *)
let drive_session ic oc ~pool ~task ~label_of =
  let transcript = ref [] in
  let record reply =
    transcript := Wire.encode_response reply :: !transcript;
    reply
  in
  let reply = ref (record (roundtrip ic oc (session_open_request ~pool ~task))) in
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < 64 do
    incr steps;
    match !reply with
    | Wire.Session_result { state = Wire.Sess_open; next = Some _; _ } -> (
        match
          record (roundtrip ic oc (Wire.Session_advise { pool; task; k = 1 }))
        with
        | Wire.Session_result { state = Wire.Sess_open; next = Some i; _ } ->
            reply :=
              record
                (roundtrip ic oc
                   (Wire.Session_vote { pool; task; worker = i; label = label_of i }))
        | r -> reply := r; continue := false)
    | _ -> continue := false
  done;
  ignore (record (roundtrip ic oc (Wire.Session_close { pool; task })));
  List.rev !transcript

(* Replies are pure functions of (pool, vote history, request): re-running
   the identical conversation — against now-warm executor caches and a
   recycled store slot — must produce a byte-identical transcript. *)
let session_determinism_test () =
  let pool = test_pool 10 in
  with_server ~domains:2 ~queue_capacity:64 (fun _service port ->
      let fd, ic, oc = connect port in
      (match
         roundtrip ic oc
           (Wire.Pool_put { name = "sdet"; workers = wire_workers pool })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      let label_of i = i mod 2 in
      let cold = drive_session ic oc ~pool:"sdet" ~task:"t0" ~label_of in
      let warm = drive_session ic oc ~pool:"sdet" ~task:"t0" ~label_of in
      Alcotest.(check (list string)) "warm replay is byte-identical" cold warm;
      Alcotest.(check bool) "conversation went somewhere" true
        (List.length cold > 2);
      (* A verb on the closed session is an unknown-session error. *)
      (match
         roundtrip ic oc
           (Wire.Session_advise { pool = "sdet"; task = "t0"; k = 1 })
       with
      | Wire.Error { code = Wire.Unknown_session; _ } -> ()
      | r -> Alcotest.failf "closed session: %s" (Wire.encode_response r));
      Unix.close fd)

(* Interleaved votes on two sessions must never cross-contaminate.  With a
   uniform prior and scalar workers, feeding session A all-0 votes and
   session B all-1 votes from the same workers makes the two posteriors
   exact mirrors — any leakage between the stores breaks the symmetry. *)
let session_isolation_test () =
  let pool = test_pool 8 in
  with_server ~domains:2 ~queue_capacity:64 (fun service port ->
      let fd, ic, oc = connect port in
      (match
         roundtrip ic oc
           (Wire.Pool_put { name = "iso"; workers = wire_workers pool })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      (* Deterministic interleave on one connection: strictly alternate
         verbs between the two tasks. *)
      let open_task task =
        match roundtrip ic oc (session_open_request ~pool:"iso" ~task) with
        | Wire.Session_result r -> Wire.Session_result r
        | r -> Alcotest.failf "open %s: %s" task (Wire.encode_response r)
      in
      let a = ref (open_task "a") and b = ref (open_task "b") in
      let vote task label reply =
        match reply with
        | Wire.Session_result { state = Wire.Sess_open; next = Some i; _ } ->
            roundtrip ic oc
              (Wire.Session_vote { pool = "iso"; task; worker = i; label })
        | r -> r
      in
      let still_open = function
        | Wire.Session_result { state = Wire.Sess_open; next = Some _; _ } ->
            true
        | _ -> false
      in
      let rounds = ref 0 in
      while (still_open !a || still_open !b) && !rounds < 32 do
        incr rounds;
        a := vote "a" 0 !a;
        b := vote "b" 1 !b
      done;
      (match (!a, !b) with
      | ( Wire.Session_result
            { task = "a"; posterior = pa; votes = va; decision = Some 0; _ },
          Wire.Session_result
            { task = "b"; posterior = pb; votes = vb; decision = Some 1; _ } )
        ->
          Alcotest.(check int) "same vote count" va vb;
          Alcotest.(check (list (float 1e-9)))
            "mirror posteriors" pa (List.rev pb)
      | ra, rb ->
          Alcotest.failf "unexpected finals: %s / %s"
            (Wire.encode_response ra) (Wire.encode_response rb));
      ignore (roundtrip ic oc (Wire.Session_close { pool = "iso"; task = "a" }));
      ignore (roundtrip ic oc (Wire.Session_close { pool = "iso"; task = "b" }));
      Unix.close fd;
      (* Concurrent connections: each thread drives its own session; every
         final snapshot must reflect only its own unanimous votes. *)
      let failures = Array.make 4 None in
      let client i =
        try
          let fd, ic, oc = connect port in
          let task = Printf.sprintf "c%d" i in
          let label = i mod 2 in
          let transcript =
            drive_session ic oc ~pool:"iso" ~task ~label_of:(fun _ -> label)
          in
          (* The last reply before the close echo is the final snapshot. *)
          (match
             Wire.decode_response (List.nth transcript (List.length transcript - 2))
           with
          | Ok (Wire.Session_result { task = t; decision = Some d; _ }) ->
              if t <> task then failwith ("snapshot for wrong task " ^ t);
              if d <> label then
                failwith (Printf.sprintf "decision %d under unanimous %d" d label)
          | Ok r -> failwith ("unexpected final " ^ Wire.encode_response r)
          | Error e -> failwith e);
          Unix.close fd
        with exn -> failures.(i) <- Some (Printexc.to_string exn)
      in
      let threads = List.init 4 (fun i -> Thread.create client i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i failure ->
          match failure with
          | Some msg -> Alcotest.failf "client %d: %s" i msg
          | None -> ())
        failures;
      let stats = Serve.Service.stats service in
      Alcotest.(check bool) "session verbs counted" true
        (List.assoc "session_verbs" stats > 0.);
      Alcotest.(check bool) "verb latency quantiles present" true
        (List.mem_assoc "session_verb_ns_p95" stats))

(* A pool-put bumps the registry version; every live session on that pool
   must answer [err unknown-session] from then on. *)
let session_invalidation_test () =
  let pool = test_pool 6 in
  with_server ~domains:1 ~queue_capacity:16 (fun service port ->
      let fd, ic, oc = connect port in
      let put () =
        match
          roundtrip ic oc
            (Wire.Pool_put { name = "inv"; workers = wire_workers pool })
        with
        | Wire.Pool_info _ -> ()
        | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r)
      in
      put ();
      (match roundtrip ic oc (session_open_request ~pool:"inv" ~task:"t") with
      | Wire.Session_result { state = Wire.Sess_open; _ } -> ()
      | r -> Alcotest.failf "open: %s" (Wire.encode_response r));
      (* A vote on a task that was never opened is unknown, not a crash. *)
      (match
         roundtrip ic oc
           (Wire.Session_vote { pool = "inv"; task = "ghost"; worker = 0; label = 0 })
       with
      | Wire.Error { code = Wire.Unknown_session; _ } -> ()
      | r -> Alcotest.failf "ghost vote: %s" (Wire.encode_response r));
      put ();
      (match
         roundtrip ic oc (Wire.Session_advise { pool = "inv"; task = "t"; k = 1 })
       with
      | Wire.Error { code = Wire.Unknown_session; _ } -> ()
      | r -> Alcotest.failf "post-put advise: %s" (Wire.encode_response r));
      Unix.close fd;
      let stats = Serve.Service.stats service in
      Alcotest.(check bool) "invalidation counted" true
        (List.assoc "sessions_invalidated" stats > 0.))

(* Admission control: a 1-slot store refuses the second open with
   [err overload] and admits it again once the first session closes. *)
let session_cap_test () =
  let service =
    Serve.Service.create ~domains:1 ~queue_capacity:16 ~session_cap:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Serve.Service.shutdown service)
    (fun () ->
      let submit r = Serve.Service.submit service r in
      (match
         submit
           (Wire.Pool_put { name = "cap"; workers = wire_workers (test_pool 5) })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      (match submit (session_open_request ~pool:"cap" ~task:"a") with
      | Wire.Session_result _ -> ()
      | r -> Alcotest.failf "open a: %s" (Wire.encode_response r));
      (match submit (session_open_request ~pool:"cap" ~task:"b") with
      | Wire.Error { code = Wire.Overload; _ } -> ()
      | r -> Alcotest.failf "open b at cap: %s" (Wire.encode_response r));
      (* Re-opening a live key is a bad request, not an overload. *)
      (match submit (session_open_request ~pool:"cap" ~task:"a") with
      | Wire.Error { code = Wire.Bad_request; _ } -> ()
      | r -> Alcotest.failf "reopen a: %s" (Wire.encode_response r));
      (match submit (Wire.Session_close { pool = "cap"; task = "a" }) with
      | Wire.Session_result { state = Wire.Sess_closed; _ } -> ()
      | r -> Alcotest.failf "close a: %s" (Wire.encode_response r));
      (match submit (session_open_request ~pool:"cap" ~task:"b") with
      | Wire.Session_result _ -> ()
      | r -> Alcotest.failf "open b after close: %s" (Wire.encode_response r));
      let stats = Serve.Service.stats service in
      Alcotest.(check (float 0.)) "one rejection" 1.
        (List.assoc "sessions_rejected" stats);
      Alcotest.(check (float 0.)) "two admissions" 2.
        (List.assoc "sessions_opened" stats))

(* ---- quality plane ---------------------------------------------------- *)

let scalar_rows qs = List.map (fun q -> Wire.Scalar (q, 1.)) qs

let calib_vote ?truth task worker label = { Workers.Calib.task; worker; label; truth }

(* Every quality mutation must flow through a version bump: an applied
   report batch retires warm session state exactly like a pool-put, and the
   readback reflects the folded-in votes. *)
let report_invalidation_test () =
  let calib_config = { Workers.Calib.default_config with Workers.Calib.batch = 8 } in
  with_server ~calib_config ~domains:2 ~queue_capacity:64 (fun service port ->
      let fd, ic, oc = connect port in
      let v1 =
        match
          roundtrip ic oc
            (Wire.Pool_put
               { name = "qp"; workers = scalar_rows [ 0.9; 0.85; 0.8; 0.75; 0.7; 0.65 ] })
        with
        | Wire.Pool_info { version; size = 6; _ } -> version
        | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r)
      in
      (match roundtrip ic oc (Wire.Quality { pool = "qp" }) with
      | Wire.Quality_result { name = "qp"; version; workers } ->
          Alcotest.(check int) "readback at the put version" v1 version;
          Alcotest.(check int) "one row per worker" 6 (List.length workers);
          List.iter
            (fun (_, _, votes) -> Alcotest.(check int) "no votes yet" 0 votes)
            workers
      | r -> Alcotest.failf "quality: %s" (Wire.encode_response r));
      (* A sub-batch report buffers without touching the version. *)
      (match
         roundtrip ic oc
           (Wire.Report { pool = "qp"; votes = [ calib_vote ~truth:1 900 0 1 ] })
       with
      | Wire.Report_result { version; applied = 0; pending = 1; _ } ->
          Alcotest.(check int) "buffered report keeps the version" v1 version
      | r -> Alcotest.failf "small report: %s" (Wire.encode_response r));
      (match roundtrip ic oc (session_open_request ~pool:"qp" ~task:"t") with
      | Wire.Session_result { state = Wire.Sess_open; _ } -> ()
      | r -> Alcotest.failf "open: %s" (Wire.encode_response r));
      (* Seven more votes make the batch due: applied, version bumped. *)
      let votes = List.init 7 (fun i -> calib_vote ~truth:1 i (succ i mod 6) 1) in
      let v2 =
        match roundtrip ic oc (Wire.Report { pool = "qp"; votes }) with
        | Wire.Report_result
            { name = "qp"; version; applied = 8; pending = 0; drifted = []; _ } ->
            Alcotest.(check bool) "applied batch bumps the version" true (version > v1);
            version
        | r -> Alcotest.failf "report: %s" (Wire.encode_response r)
      in
      (* The warm session predates the bump: retired, not resumed. *)
      (match
         roundtrip ic oc (Wire.Session_advise { pool = "qp"; task = "t"; k = 1 })
       with
      | Wire.Error { code = Wire.Unknown_session; _ } -> ()
      | r -> Alcotest.failf "post-report advise: %s" (Wire.encode_response r));
      (match roundtrip ic oc (Wire.Quality { pool = "qp" }) with
      | Wire.Quality_result { version; workers; _ } ->
          Alcotest.(check int) "readback at the bumped version" v2 version;
          Alcotest.(check int) "all votes accounted" 8
            (List.fold_left (fun a (_, _, v) -> a + v) 0 workers);
          List.iter
            (fun (_, q, _) ->
              Alcotest.(check bool) "estimates stay in (0,1)" true (q > 0. && q < 1.))
            workers
      | r -> Alcotest.failf "quality after report: %s" (Wire.encode_response r));
      (* Malformed votes and unknown pools are wire errors, not crashes. *)
      (match
         roundtrip ic oc (Wire.Report { pool = "qp"; votes = [ calib_vote 0 0 7 ] })
       with
      | Wire.Error { code = Wire.Bad_request; _ } -> ()
      | r -> Alcotest.failf "bad label: %s" (Wire.encode_response r));
      (match roundtrip ic oc (Wire.Report { pool = "ghost"; votes }) with
      | Wire.Error { code = Wire.Unknown_pool; _ } -> ()
      | r -> Alcotest.failf "ghost report: %s" (Wire.encode_response r));
      (match roundtrip ic oc (Wire.Recal { pool = "qp" }) with
      | Wire.Report_result { applied = 0; _ } -> ()
      | r -> Alcotest.failf "recal: %s" (Wire.encode_response r));
      Unix.close fd;
      let stats = Serve.Service.stats service in
      Alcotest.(check bool) "ingests counted" true (List.assoc "ingests" stats >= 2.);
      Alcotest.(check bool) "votes counted" true
        (List.assoc "votes_ingested" stats >= 8.);
      Alcotest.(check bool) "ingest latency tracked" true
        (List.mem_assoc "ingest_ns_p95" stats);
      Alcotest.(check bool) "quality-plane gauges exported" true
        (List.mem_assoc "stale_pools" stats && List.mem_assoc "drift_flags" stats))

(* A mid-stream spammer must be flagged within one drift window and the
   standing jury re-selected away from them. *)
let drift_reselection_test () =
  let calib_config = { Workers.Calib.default_config with Workers.Calib.batch = 24 } in
  with_server ~calib_config ~domains:1 ~queue_capacity:16 (fun service port ->
      let fd, ic, oc = connect port in
      (match
         roundtrip ic oc
           (Wire.Pool_put
              { name = "drift"; workers = scalar_rows [ 0.9; 0.85; 0.8; 0.78; 0.76; 0.74 ] })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      let select () =
        match
          roundtrip ic oc
            (Wire.Select
               { pool = "drift"; budget = 3.; prior = Wire.default_prior; seed = 5 })
        with
        | Wire.Select_result { ids; _ } -> ids
        | r -> Alcotest.failf "select: %s" (Wire.encode_response r)
      in
      let before = select () in
      Alcotest.(check bool) "the strongest worker starts on the jury" true
        (List.mem 0 before);
      (* Worker 0 turns into a coin flipper: one drift window of gold
         answers at exactly chance agreement. *)
      let votes = List.init 24 (fun i -> calib_vote ~truth:1 i 0 (i mod 2)) in
      (match roundtrip ic oc (Wire.Report { pool = "drift"; votes }) with
      | Wire.Report_result { applied = 24; drifted; stale; recals; _ } ->
          Alcotest.(check (list int)) "spammer flagged within one window" [ 0 ] drifted;
          Alcotest.(check bool) "standing juries went stale" true stale;
          Alcotest.(check int) "one standing jury re-selected" 1 recals
      | r -> Alcotest.failf "report: %s" (Wire.encode_response r));
      (match roundtrip ic oc (Wire.Quality { pool = "drift" }) with
      | Wire.Quality_result { workers; _ } -> (
          match List.assoc_opt 0 (List.map (fun (i, q, v) -> (i, (q, v))) workers) with
          | Some (q, votes) ->
              Alcotest.(check bool) "re-anchored near chance" true
                (Float.abs (q -. 0.5) <= 0.05);
              Alcotest.(check int) "votes attributed" 24 votes
          | None -> Alcotest.fail "worker 0 missing from readback")
      | r -> Alcotest.failf "quality: %s" (Wire.encode_response r));
      let after = select () in
      Alcotest.(check bool) "re-selection drops the spammer" true
        (not (List.mem 0 after));
      Unix.close fd;
      let stats = Serve.Service.stats service in
      Alcotest.(check bool) "re-selection counted" true
        (List.assoc "recal_runs" stats >= 1.);
      Alcotest.(check bool) "drift flag exported" true
        (List.assoc "drift_flags" stats >= 1.))

(* [decide truth=g] closes the session as a gold example; labels outside
   the task's range are a wire error that leaves the session alive. *)
let decide_truth_test () =
  with_server ~domains:1 ~queue_capacity:16 (fun _service port ->
      let fd, ic, oc = connect port in
      (match
         roundtrip ic oc
           (Wire.Pool_put { name = "dt"; workers = scalar_rows [ 0.55; 0.7; 0.7 ] })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      (match roundtrip ic oc (session_open_request ~pool:"dt" ~task:"t") with
      | Wire.Session_result { state = Wire.Sess_open; _ } -> ()
      | r -> Alcotest.failf "open: %s" (Wire.encode_response r));
      (match
         roundtrip ic oc
           (Wire.Session_vote { pool = "dt"; task = "t"; worker = 0; label = 0 })
       with
      | Wire.Session_result _ -> ()
      | r -> Alcotest.failf "vote: %s" (Wire.encode_response r));
      (match
         roundtrip ic oc
           (Wire.Session_decide { pool = "dt"; task = "t"; truth = Some 7 })
       with
      | Wire.Error { code = Wire.Bad_request; _ } -> ()
      | r -> Alcotest.failf "out-of-range truth: %s" (Wire.encode_response r));
      (* The bad decide did not kill the session. *)
      (match
         roundtrip ic oc (Wire.Session_advise { pool = "dt"; task = "t"; k = 1 })
       with
      | Wire.Session_result { state = Wire.Sess_open; _ } -> ()
      | r -> Alcotest.failf "advise after bad decide: %s" (Wire.encode_response r));
      (match
         roundtrip ic oc
           (Wire.Session_decide { pool = "dt"; task = "t"; truth = Some 0 })
       with
      | Wire.Session_result { decision = Some _; _ } -> ()
      | r -> Alcotest.failf "decide: %s" (Wire.encode_response r));
      (* The decided session fed its vote to the calibrator as gold; a
         forced recalibration folds it in. *)
      (match roundtrip ic oc (Wire.Recal { pool = "dt" }) with
      | Wire.Report_result { applied; _ } ->
          Alcotest.(check int) "session vote reached the calibrator" 1 applied
      | r -> Alcotest.failf "recal: %s" (Wire.encode_response r));
      Unix.close fd)

let quality_plane_tests =
  [
    Alcotest.test_case "report bumps versions and invalidates" `Quick
      report_invalidation_test;
    Alcotest.test_case "drift re-selects the standing jury" `Quick
      drift_reselection_test;
    Alcotest.test_case "decide with ground truth feeds gold" `Quick
      decide_truth_test;
  ]

let session_service_tests =
  [
    Alcotest.test_case "session replies are byte-deterministic" `Quick
      session_determinism_test;
    Alcotest.test_case "interleaved sessions stay isolated" `Quick
      session_isolation_test;
    Alcotest.test_case "pool-put invalidates live sessions" `Quick
      session_invalidation_test;
    Alcotest.test_case "session store cap refuses then readmits" `Quick
      session_cap_test;
  ]

let service_tests =
  [
    Alcotest.test_case "tcp mixed queries match direct calls" `Quick
      integration_test;
    Alcotest.test_case "tcp 3-label pool matches direct engine calls" `Quick
      multiclass_integration_test;
    Alcotest.test_case "overload degrades gracefully" `Quick overload_test;
    Alcotest.test_case "shutdown drains and refuses" `Quick shutdown_test;
  ]

(* ---- pool_io validation ----------------------------------------------- *)

let pool_io_tests =
  let rejects name csv =
    Alcotest.test_case name `Quick (fun () ->
        match Workers.Pool_io.of_csv_string csv with
        | exception Failure msg ->
            (* e.g. "Pool_io: line 2: quality must lie in [0, 1]: ..." *)
            let contains_line =
              let needle = "line " in
              let n = String.length needle and m = String.length msg in
              let rec at i =
                i + n <= m && (String.sub msg i n = needle || at (i + 1))
              in
              at 0
            in
            Alcotest.(check bool) "message is line-numbered" true contains_line
        | _ -> Alcotest.fail "expected Failure")
  in
  [
    rejects "NaN quality" "name,quality,cost\nA,nan,1";
    rejects "quality above 1" "name,quality,cost\nA,1.5,1";
    rejects "negative cost" "name,quality,cost\nA,0.5,-1";
    rejects "infinite cost" "name,quality,cost\nA,0.5,inf";
    Alcotest.test_case "file round-trip" `Quick (fun () ->
        let pool = test_pool 6 in
        let path = Filename.temp_file "optjs_pool" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Workers.Pool_io.save path pool;
            let loaded = Workers.Pool_io.load path in
            Alcotest.(check int)
              "size" (Workers.Pool.size pool)
              (Workers.Pool.size loaded)));
    Alcotest.test_case "matrix doc round-trip" `Quick (fun () ->
        let confusions =
          Array.init 4 (fun i ->
              let d = 0.55 +. (0.05 *. float_of_int i) in
              let off = (1. -. d) /. 2. in
              Workers.Confusion.make ~id:i
                ~matrix:
                  (Array.init 3 (fun j ->
                       Array.init 3 (fun v -> if j = v then d else off)))
                ~cost:(float_of_int (i + 1))
                ())
        in
        let doc = Workers.Pool_io.Matrix_rows confusions in
        match
          Workers.Pool_io.doc_of_csv_string
            (Workers.Pool_io.doc_to_csv_string doc)
        with
        | Workers.Pool_io.Matrix_rows loaded ->
            Alcotest.(check int) "size" 4 (Array.length loaded);
            Array.iteri
              (fun i c ->
                Alcotest.(check int) "labels" 3 (Workers.Confusion.labels c);
                Alcotest.(check (float 1e-12))
                  "cost"
                  (Workers.Confusion.cost confusions.(i))
                  (Workers.Confusion.cost c);
                for j = 0 to 2 do
                  Alcotest.(check (array (float 1e-12)))
                    "row"
                    (Workers.Confusion.row confusions.(i) j)
                    (Workers.Confusion.row c j)
                done)
              loaded
        | Workers.Pool_io.Scalar_rows _ ->
            Alcotest.fail "expected a matrix document");
    Alcotest.test_case "scalar doc is Scalar_rows" `Quick (fun () ->
        match Workers.Pool_io.doc_of_csv_string "name,quality,cost\nA,0.8,2\n" with
        | Workers.Pool_io.Scalar_rows pool ->
            Alcotest.(check int) "size" 1 (Workers.Pool.size pool)
        | Workers.Pool_io.Matrix_rows _ -> Alcotest.fail "expected scalar");
    Alcotest.test_case "matrix doc rejects bad rows" `Quick (fun () ->
        let expect_failure name csv =
          match Workers.Pool_io.doc_of_csv_string csv with
          | exception Failure _ -> ()
          | _ -> Alcotest.failf "%s: expected Failure" name
        in
        expect_failure "non-square" "A,1,0.8,0.2,0.2,0.8,0.5";
        expect_failure "row sum" "A,1,0.8,0.8,0.2,0.8";
        expect_failure "mixed labels"
          "A,1,0.8,0.2,0.2,0.8\nB,1,0.8,0.1,0.1,0.1,0.8,0.1,0.1,0.1,0.8";
        expect_failure "mixed kinds" "A,1,0.8,0.2,0.2,0.8\nB,0.9,1");
  ]

(* ---- connection plane: event loop, framing, fault injection --------- *)

let with_server_opts ?backlog ?max_conns ?idle_timeout ?max_line ?force_poll
    ~domains ~queue_capacity f =
  let service = Serve.Service.create ~domains ~queue_capacity () in
  let server =
    Serve.Server.create ?backlog ?max_conns ?idle_timeout ?max_line ?force_poll
      ~port:0 service
  in
  Serve.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Service.shutdown service)
    (fun () -> f service (Serve.Server.port server))

let gauge service key =
  match List.assoc_opt key (Serve.Service.stats service) with
  | Some v -> v
  | None -> Alcotest.failf "stats missing gauge %s" key

(* Feed a string into a frame in [chunk]-byte pieces, collecting every
   event [next] produces along the way. *)
let frame_feed frame ~chunk s =
  let out = ref [] in
  let drain () =
    let rec go () =
      match Serve.Lineframe.next frame with
      | `Await -> ()
      | (`Line _ | `Too_long) as ev ->
          out := ev :: !out;
          go ()
    in
    go ()
  in
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    (match Serve.Lineframe.reserve frame with
    | None -> drain ()
    | Some (buf, off, room) ->
        let take = min chunk (min room (n - !pos)) in
        Bytes.blit_string s !pos buf off take;
        Serve.Lineframe.commit frame take;
        pos := !pos + take);
    drain ()
  done;
  drain ();
  List.rev !out

let lineframe_tests =
  [
    Alcotest.test_case "split reads frame in order" `Quick (fun () ->
        let frame = Serve.Lineframe.create ~max_line:64 () in
        let events = frame_feed frame ~chunk:3 "a\nbb\nccc\n" in
        Alcotest.(check (list string))
          "lines" [ "a"; "bb"; "ccc" ]
          (List.map
             (function `Line l -> l | `Too_long -> "<too-long>")
             events);
        Alcotest.(check bool) "no partial left" false
          (Serve.Lineframe.pending frame));
    Alcotest.test_case "over-limit line reported once, then resync" `Quick
      (fun () ->
        let frame = Serve.Lineframe.create ~max_line:16 () in
        let events =
          frame_feed frame ~chunk:5 (String.make 100 'x' ^ "\nping\n")
        in
        Alcotest.(check (list string))
          "one too-long, then the next line"
          [ "<too-long>"; "ping" ]
          (List.map
             (function `Line l -> l | `Too_long -> "<too-long>")
             events));
    Alcotest.test_case "exact max_line accepted, one over rejected" `Quick
      (fun () ->
        let exact = String.make 16 'y' in
        let frame = Serve.Lineframe.create ~max_line:16 () in
        (match frame_feed frame ~chunk:7 (exact ^ "\n") with
        | [ `Line l ] -> Alcotest.(check string) "exact" exact l
        | _ -> Alcotest.fail "expected exactly one line");
        let frame = Serve.Lineframe.create ~max_line:16 () in
        match frame_feed frame ~chunk:7 (exact ^ "y\n") with
        | [ `Too_long ] -> ()
        | _ -> Alcotest.fail "expected exactly one too-long event");
    Alcotest.test_case "backpressure when full of undrained lines" `Quick
      (fun () ->
        let frame = Serve.Lineframe.create ~max_line:8 () in
        (* Fill with complete 2-byte lines without draining. *)
        let rec fill () =
          match Serve.Lineframe.reserve frame with
          | None -> ()
          | Some (buf, off, room) ->
              let take = min 2 room in
              Bytes.blit_string (if take = 2 then "z\n" else "\n") 0 buf off
                take;
              Serve.Lineframe.commit frame take;
              fill ()
        in
        fill ();
        Alcotest.(check bool) "no room" false (Serve.Lineframe.has_room frame);
        (match Serve.Lineframe.next frame with
        | `Line _ -> ()
        | _ -> Alcotest.fail "expected a buffered line");
        Alcotest.(check bool) "room after drain" true
          (Serve.Lineframe.has_room frame));
  ]

let accept_action_tests =
  let check_action name expected error =
    let show = function
      | `Retry -> "retry"
      | `Drained -> "drained"
      | `Backoff -> "backoff"
      | `Stop -> "stop"
    in
    Alcotest.(check string)
      name (show expected)
      (show (Serve.Server.accept_action error))
  in
  [
    Alcotest.test_case "classification" `Quick (fun () ->
        check_action "EINTR" `Retry Unix.EINTR;
        check_action "ECONNABORTED" `Retry Unix.ECONNABORTED;
        check_action "EAGAIN" `Drained Unix.EAGAIN;
        check_action "EWOULDBLOCK" `Drained Unix.EWOULDBLOCK;
        check_action "EMFILE" `Backoff Unix.EMFILE;
        check_action "ENFILE" `Backoff Unix.ENFILE;
        check_action "ENOBUFS" `Backoff Unix.ENOBUFS;
        check_action "ENOMEM" `Backoff Unix.ENOMEM;
        check_action "unknown errno" `Backoff (Unix.EUNKNOWNERR 999);
        check_action "EBADF" `Stop Unix.EBADF;
        check_action "EINVAL" `Stop Unix.EINVAL;
        check_action "ENOTSOCK" `Stop Unix.ENOTSOCK);
  ]

let line_too_long_test () =
  with_server_opts ~max_line:128 ~domains:1 ~queue_capacity:16
    (fun service port ->
      let fd, ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          output_string oc (String.make 1000 'x');
          output_char oc '\n';
          flush oc;
          (match Wire.decode_response (input_line ic) with
          | Ok (Wire.Error { code = Wire.Bad_request; message }) ->
              Alcotest.(check bool)
                "names the limit" true
                (String.length message >= 13
                && String.sub message 0 13 = "line-too-long")
          | Ok r ->
              Alcotest.failf "expected bad-request, got %s"
                (Wire.encode_response r)
          | Error e -> Alcotest.failf "undecodable reply: %s" e);
          (* Same connection still frames and serves after the resync. *)
          check_response "conn survives too-long" Wire.Pong
            (roundtrip ic oc Wire.Ping);
          Alcotest.(check bool)
            "long_lines counted" true
            (gauge service "long_lines" >= 1.)))

let midreply_disconnect_test () =
  with_server_opts ~domains:1 ~queue_capacity:16 (fun service port ->
      let pool = test_pool 10 in
      (match
         Serve.Service.submit service
           (Wire.Pool_put { name = "p"; workers = wire_workers pool })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      (* Fire a compute request and slam the connection shut before the
         reply lands: the write must become a clean close, not SIGPIPE or
         an event-thread crash. *)
      for seed = 0 to 4 do
        let fd, _, oc = connect port in
        output_string oc
          (Wire.encode_request
             (Wire.Select { pool = "p"; budget = 8.; prior = [ 0.5; 0.5 ]; seed }));
        output_char oc '\n';
        flush oc;
        Unix.close fd
      done;
      (* The plane is still alive and serving. *)
      let fd, ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          check_response "server survives" Wire.Pong (roundtrip ic oc Wire.Ping)))

let slowloris_test () =
  with_server_opts ~idle_timeout:0.3 ~domains:1 ~queue_capacity:16
    (fun service port ->
      (* Conn B idles with an EMPTY buffer across the deadline: never
         reaped (long-lived mostly-idle conversations are the design
         workload). *)
      let fd_b, ic_b, oc_b = connect port in
      check_response "b alive before" Wire.Pong (roundtrip ic_b oc_b Wire.Ping);
      (* Conn A drips a partial line and stalls: reaped at the deadline
         even if bytes keep trickling in. *)
      let fd_a, ic_a, oc_a = connect port in
      output_string oc_a "pi";
      flush oc_a;
      Unix.sleepf 0.15;
      output_string oc_a "ng";
      flush oc_a;
      Unix.setsockopt_float fd_a Unix.SO_RCVTIMEO 10.;
      (match input_line ic_a with
      | line -> Alcotest.failf "slow conn got a reply: %s" line
      | exception End_of_file -> ()
      | exception Sys_error _ -> ());
      Alcotest.(check bool)
        "read_timeouts counted" true
        (gauge service "read_timeouts" >= 1.);
      check_response "idle empty conn survives" Wire.Pong
        (roundtrip ic_b oc_b Wire.Ping);
      (try Unix.close fd_a with Unix.Unix_error _ -> ());
      try Unix.close fd_b with Unix.Unix_error _ -> ())

let conn_cap_test () =
  with_server_opts ~max_conns:2 ~domains:1 ~queue_capacity:16
    (fun service port ->
      let fd1, ic1, oc1 = connect port in
      let fd2, ic2, oc2 = connect port in
      (* Roundtrips prove both are accepted before the third connects. *)
      check_response "conn1" Wire.Pong (roundtrip ic1 oc1 Wire.Ping);
      check_response "conn2" Wire.Pong (roundtrip ic2 oc2 Wire.Ping);
      let fd3, ic3, _ = connect port in
      Unix.setsockopt_float fd3 Unix.SO_RCVTIMEO 10.;
      (match Wire.decode_response (input_line ic3) with
      | Ok (Wire.Error { code = Wire.Overload; _ }) -> ()
      | Ok r ->
          Alcotest.failf "expected err overload, got %s"
            (Wire.encode_response r)
      | Error e -> Alcotest.failf "undecodable shed reply: %s" e);
      Alcotest.(check bool)
        "conns_rejected counted" true
        (gauge service "conns_rejected" >= 1.);
      (* Shedding does not disturb the admitted connections. *)
      check_response "conn1 still served" Wire.Pong (roundtrip ic1 oc1 Wire.Ping);
      check_response "conn2 still served" Wire.Pong (roundtrip ic2 oc2 Wire.Ping);
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ fd1; fd2; fd3 ])

let fd_exhaustion_test () =
  with_server_opts ~domains:1 ~queue_capacity:16 (fun service port ->
      (* Create the client socket while descriptors are still plentiful,
         then clamp RLIMIT_NOFILE so the server's accept(2) hits EMFILE:
         the TCP handshake still completes against the listen backlog, so
         the connection sits there until the loop's backoff retry finds
         descriptors again. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let limit = Serve.Evloop.rlimit_nofile () in
      let probe = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let next_fd : int = Obj.magic probe in
      Unix.close probe;
      ignore (Serve.Evloop.rlimit_nofile ~set:next_fd ());
      Fun.protect
        ~finally:(fun () -> ignore (Serve.Evloop.rlimit_nofile ~set:limit ()))
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          (* Give the loop time to hit EMFILE and start backing off. *)
          let deadline = Serve.Clock.now () +. 5. in
          while
            gauge service "accept_backoffs" < 1.
            && Serve.Clock.now () < deadline
          do
            Thread.yield ()
          done;
          Alcotest.(check bool)
            "accept backed off" true
            (gauge service "accept_backoffs" >= 1.));
      (* Limit restored: the backoff retry must pick the connection up
         and serve it — the listener never died. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      check_response "served after backoff" Wire.Pong
        (roundtrip ic oc Wire.Ping);
      try Unix.close fd with Unix.Unix_error _ -> ())

let thousand_conns_test () =
  with_server_opts ~backlog:1024 ~max_conns:1100 ~domains:2 ~queue_capacity:256
    (fun service port ->
      let n = 1000 in
      let need = (2 * n) + 256 in
      if Serve.Evloop.rlimit_nofile () < need then
        ignore (Serve.Evloop.rlimit_nofile ~set:need ());
      let pool = test_pool 10 in
      (match
         Serve.Service.submit service
           (Wire.Pool_put { name = "p"; workers = wire_workers pool })
       with
      | Wire.Pool_info _ -> ()
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      let fds =
        Array.init n (fun _ ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            fd)
      in
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            fds)
        (fun () ->
          let deadline = Serve.Clock.now () +. 30. in
          while
            gauge service "conns_open" < float_of_int n
            && Serve.Clock.now () < deadline
          do
            Thread.yield ()
          done;
          Alcotest.(check (float 0.))
            "all connections held" (float_of_int n)
            (gauge service "conns_open");
          (* Pipelined batch on a few of the open connections, everyone
             else idle: replies must come back in order and byte-identical
             to direct Service.submit. *)
          let requests =
            [
              Wire.Ping;
              Wire.Jq
                {
                  source = Wire.Named "p";
                  prior = [ 0.5; 0.5 ];
                  num_buckets = Jq.Bucket.default_num_buckets;
                };
              Wire.Select
                { pool = "p"; budget = 8.; prior = [ 0.5; 0.5 ]; seed = 3 };
              Wire.Jq
                {
                  source = Wire.Inline [ 0.9; 0.6; 0.7 ];
                  prior = [ 0.5; 0.5 ];
                  num_buckets = Jq.Bucket.default_num_buckets;
                };
              Wire.Ping;
            ]
          in
          let expected =
            List.map
              (fun r ->
                Wire.encode_response (Serve.Service.submit service r))
              requests
          in
          List.iter
            (fun i ->
              let fd = fds.(i) in
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              (* One write carrying the whole pipeline. *)
              List.iter
                (fun r ->
                  output_string oc (Wire.encode_request r);
                  output_char oc '\n')
                requests;
              flush oc;
              List.iteri
                (fun j e ->
                  Alcotest.(check string)
                    (Printf.sprintf "conn %d reply %d" i j)
                    e (input_line ic))
                expected)
            [ 0; 137; 499; 801; 999 ]))

let force_poll_test () =
  (match Serve.Evloop.backend (Serve.Evloop.create ~force_poll:true ()) with
  | `Poll -> ()
  | `Epoll -> Alcotest.fail "force_poll ignored");
  with_server_opts ~force_poll:true ~domains:1 ~queue_capacity:16
    (fun _service port ->
      let fd, ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          check_response "ping over poll backend" Wire.Pong
            (roundtrip ic oc Wire.Ping);
          check_response "jq over poll backend"
            (Serve.Service.submit _service
               (Wire.Jq
                  {
                    source = Wire.Inline [ 0.8; 0.7 ];
                    prior = [ 0.5; 0.5 ];
                    num_buckets = Jq.Bucket.default_num_buckets;
                  }))
            (roundtrip ic oc
               (Wire.Jq
                  {
                    source = Wire.Inline [ 0.8; 0.7 ];
                    prior = [ 0.5; 0.5 ];
                    num_buckets = Jq.Bucket.default_num_buckets;
                  }))))

let stop_closes_plane_test () =
  let service = Serve.Service.create ~domains:1 ~queue_capacity:16 () in
  let server = Serve.Server.create ~port:0 service in
  Serve.Server.start server;
  let port = Serve.Server.port server in
  let fd, ic, oc = connect port in
  check_response "served before stop" Wire.Pong (roundtrip ic oc Wire.Ping);
  Serve.Server.stop server;
  (* stop joined the event thread: the listener is gone and the open
     connection was closed. *)
  (match connect port with
  | _ -> Alcotest.fail "listener still accepting after stop"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  (match input_line ic with
  | line -> Alcotest.failf "conn got data after stop: %s" line
  | exception End_of_file -> ()
  | exception Sys_error _ -> Alcotest.fail "conn not closed by stop");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Serve.Server.stop server;
  (* Idempotent. *)
  Serve.Service.shutdown service

let connection_plane_tests =
  [
    Alcotest.test_case "over-limit line answered and survived" `Quick
      line_too_long_test;
    Alcotest.test_case "client closing mid-reply is clean teardown" `Quick
      midreply_disconnect_test;
    Alcotest.test_case "slow-loris partial line reaped, empty idle kept"
      `Quick slowloris_test;
    Alcotest.test_case "connection cap sheds with err overload" `Quick
      conn_cap_test;
    Alcotest.test_case "fd exhaustion backs off and recovers" `Quick
      fd_exhaustion_test;
    Alcotest.test_case "1k connections, pipelined, byte-identical" `Slow
      thousand_conns_test;
    Alcotest.test_case "poll backend serves end to end" `Quick
      force_poll_test;
    Alcotest.test_case "stop closes listener, conns and thread" `Quick
      stop_closes_plane_test;
  ]

(* ---- fleet plane ----------------------------------------------------- *)

let fleet_tcp_test () =
  let pool = test_pool 8 in
  (* A third of the pool's total cost: neither task can hog every
     worker, so both juries are non-empty whatever the draws. *)
  let budget = Workers.Pool.total_cost pool /. 3. in
  with_server ~domains:2 ~queue_capacity:64 (fun service port ->
      let fd, ic, oc = connect port in
      (match
         roundtrip ic oc
           (Wire.Pool_put { name = "fp"; workers = wire_workers pool })
       with
      | Wire.Pool_info { version; _ } ->
          Alcotest.(check int) "first version" 1 version
      | r -> Alcotest.failf "pool-put: %s" (Wire.encode_response r));
      let submit task =
        match
          roundtrip ic oc
            (Wire.Fleet_submit
               {
                 pool = "fp"; task; prior = [ 0.5; 0.5 ]; budget; tier = 0;
                 target = 0.;
               })
        with
        | Wire.Fleet_task { task = echoed; jury; cost; _ } ->
            Alcotest.(check string) "task echoed" task echoed;
            Alcotest.(check bool) "within budget" true
              (cost <= budget +. 1e-9);
            jury
        | r -> Alcotest.failf "fleet-submit: %s" (Wire.encode_response r)
      in
      ignore (submit "fa");
      ignore (submit "fb");
      (* The second arrival's delta auction may re-solve the first jury,
         so current assignments come from status, not the submit echo. *)
      let status task =
        match
          roundtrip ic oc (Wire.Fleet_status { pool = "fp"; task = Some task })
        with
        | Wire.Fleet_task { jury; cost; _ } ->
            Alcotest.(check bool) "status within budget" true
              (cost <= budget +. 1e-9);
            jury
        | r -> Alcotest.failf "fleet-status: %s" (Wire.encode_response r)
      in
      let j1 = status "fa" in
      let j2 = status "fb" in
      Alcotest.(check bool) "juries assigned" true (j1 <> [] && j2 <> []);
      Alcotest.(check bool) "no worker on two juries" true
        (List.for_all (fun p -> not (List.mem p j2)) j1);
      (match
         roundtrip ic oc (Wire.Fleet_status { pool = "fp"; task = None })
       with
      | Wire.Fleet_summary s ->
          Alcotest.(check int) "resident tasks" 2 s.tasks;
          Alcotest.(check int) "assigned tasks" 2 s.assigned;
          Alcotest.(check int) "summary version" 1 s.version
      | r -> Alcotest.failf "fleet summary: %s" (Wire.encode_response r));
      (match
         roundtrip ic oc
           (Wire.Fleet_release { pool = "fp"; task = "fa"; decided = true })
       with
      | Wire.Fleet_released { freed; _ } ->
          Alcotest.(check int) "freed the whole jury" (List.length j1) freed
      | r -> Alcotest.failf "fleet-release: %s" (Wire.encode_response r));
      (match
         roundtrip ic oc
           (Wire.Fleet_release { pool = "fp"; task = "fa"; decided = false })
       with
      | Wire.Error { code = Wire.Unknown_task; _ } -> ()
      | r -> Alcotest.failf "double release: %s" (Wire.encode_response r));
      (match
         roundtrip ic oc
           (Wire.Fleet_submit
              {
                pool = "nope"; task = "t"; prior = [ 0.5; 0.5 ]; budget;
                tier = 0; target = 0.;
              })
       with
      | Wire.Error { code = Wire.Unknown_pool; _ } -> ()
      | r -> Alcotest.failf "unknown pool: %s" (Wire.encode_response r));
      (* A pool-put bumps the version; the allocator resyncs on its next
         touch and keeps the still-compatible resident task. *)
      (match
         roundtrip ic oc
           (Wire.Pool_put
              { name = "fp"; workers = wire_workers (test_pool 6) })
       with
      | Wire.Pool_info { version; _ } ->
          Alcotest.(check bool) "version bumped" true (version > 1)
      | r -> Alcotest.failf "pool-put 2: %s" (Wire.encode_response r));
      (match
         roundtrip ic oc (Wire.Fleet_status { pool = "fp"; task = None })
       with
      | Wire.Fleet_summary s ->
          Alcotest.(check bool) "resynced version" true (s.version > 1);
          Alcotest.(check int) "survivor kept" 1 s.tasks
      | r -> Alcotest.failf "post-put summary: %s" (Wire.encode_response r));
      Unix.close fd;
      let stats = Serve.Service.stats service in
      let get k = try List.assoc k stats with Not_found -> -1. in
      Alcotest.(check bool) "fleet_assigns counted" true (get "fleet_assigns" >= 2.);
      Alcotest.(check bool) "fleet_releases counted" true
        (get "fleet_releases" >= 1.);
      Alcotest.(check bool) "fleet gauge present" true (get "fleet_pools" >= 1.))

let fleet_plane_tests =
  [ Alcotest.test_case "fleet verbs over tcp" `Quick fleet_tcp_test ]

let () =
  Alcotest.run "serve"
    [
      ("wire codec properties", codec_props);
      ("wire codec cases", codec_units);
      ("registry", registry_tests);
      ("bqueue", bqueue_tests);
      ("dispatch", dispatch_tests);
      ("metrics", metrics_tests);
      ("service", service_tests);
      ("sessions", session_service_tests);
      ("quality plane", quality_plane_tests);
      ("fleet plane", fleet_plane_tests);
      ("pool_io", pool_io_tests);
      ("lineframe", lineframe_tests);
      ("accept classification", accept_action_tests);
      ("connection plane", connection_plane_tests);
    ]
