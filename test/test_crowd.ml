(* Tests for the crowdsourcing-platform substrate: tasks, vote simulation,
   the HIT platform, the synthetic AMT dataset, and evaluation. *)

open Voting

let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Task ---------------------------------------------------------------- *)

let test_task_make () =
  let t = Crowd.Task.make ~prior:0.3 ~truth:Vote.Yes ~id:7 () in
  check_int "id" 7 (Crowd.Task.id t);
  check_close 1e-12 "prior" 0.3 (Crowd.Task.prior t);
  check_bool "truth" true (Vote.equal (Crowd.Task.truth_exn t) Vote.Yes)

let test_task_validation () =
  Alcotest.check_raises "prior" (Invalid_argument "Task.make: prior outside [0, 1]")
    (fun () -> ignore (Crowd.Task.make ~prior:1.5 ~id:0 ()));
  let t = Crowd.Task.make ~id:0 () in
  Alcotest.check_raises "no truth"
    (Invalid_argument "Task.truth_exn: task has no modelled ground truth") (fun () ->
      ignore (Crowd.Task.truth_exn t))

let test_task_multi () =
  let t = Crowd.Task.Multi.make ~id:0 ~prior:[| 0.2; 0.3; 0.5 |] ~truth:2 () in
  check_int "labels" 3 (Crowd.Task.Multi.labels t);
  check_int "truth" 2 (Crowd.Task.Multi.truth_exn t);
  Alcotest.check_raises "prior sum"
    (Invalid_argument "Task.Multi.make: prior does not sum to 1") (fun () ->
      ignore (Crowd.Task.Multi.make ~id:0 ~prior:[| 0.2; 0.3 |] ()));
  Alcotest.check_raises "truth range"
    (Invalid_argument "Task.Multi.make: truth out of range") (fun () ->
      ignore (Crowd.Task.Multi.make ~id:0 ~prior:[| 0.5; 0.5 |] ~truth:2 ()))

(* ---- Simulate -------------------------------------------------------------- *)

let test_simulate_vote_frequency () =
  let rng = Prob.Rng.create 11 in
  let n = 50_000 in
  let correct = ref 0 in
  for _ = 1 to n do
    let v = Crowd.Simulate.vote rng ~truth:Vote.Yes ~quality:0.8 in
    if Vote.equal v Vote.Yes then incr correct
  done;
  check_close 0.01 "matches quality" 0.8 (float_of_int !correct /. float_of_int n)

let test_simulate_truth_frequency () =
  let rng = Prob.Rng.create 12 in
  let n = 50_000 in
  let zeros = ref 0 in
  for _ = 1 to n do
    if Vote.equal (Crowd.Simulate.sample_truth rng ~alpha:0.3) Vote.No then incr zeros
  done;
  check_close 0.01 "alpha" 0.3 (float_of_int !zeros /. float_of_int n)

let test_simulate_voting_shape =
  qtest "voting has one vote per worker" QCheck2.Gen.(int_range 1 20) (fun n ->
      let rng = Prob.Rng.create n in
      let v = Crowd.Simulate.voting rng ~truth:Vote.No (Array.make n 0.7) in
      Array.length v = n)

let test_simulate_multi_vote () =
  let rng = Prob.Rng.create 13 in
  let c = Workers.Confusion.uniform_spammer ~labels:4 ~id:0 ~cost:0. in
  for _ = 1 to 100 do
    let v = Crowd.Simulate.multi_vote rng ~truth:2 c in
    check_bool "in range" true (v >= 0 && v < 4)
  done

(* The central consistency check: the Monte-Carlo JQ of BV converges to the
   analytic Definition-3 JQ. *)
let test_empirical_jq_matches_exact () =
  let rng = Prob.Rng.create 14 in
  let qualities = [| 0.9; 0.6; 0.6 |] in
  let mc =
    Crowd.Simulate.empirical_jq rng ~trials:100_000 ~strategy:Bayesian.strategy
      ~alpha:0.5 ~qualities
  in
  check_close 0.01 "BV converges to 0.9" 0.9 mc;
  let mc_mv =
    Crowd.Simulate.empirical_jq rng ~trials:100_000 ~strategy:Classic.majority
      ~alpha:0.5 ~qualities
  in
  check_close 0.01 "MV converges to 0.792" 0.792 mc_mv

(* ---- Platform ---------------------------------------------------------------- *)

let mk_tasks n =
  Array.init n (fun id ->
      Crowd.Task.make ~id ~truth:(if id mod 2 = 0 then Vote.No else Vote.Yes) ())

let test_platform_batch () =
  let hits = Crowd.Platform.batch ~per_hit:20 (mk_tasks 50) in
  check_int "3 hits" 3 (Array.length hits);
  check_int "full hit" 20 (Array.length hits.(0).Crowd.Platform.task_ids);
  check_int "ragged tail" 10 (Array.length hits.(2).Crowd.Platform.task_ids);
  Alcotest.check_raises "per_hit" (Invalid_argument "Platform.batch: per_hit <= 0")
    (fun () -> ignore (Crowd.Platform.batch ~per_hit:0 (mk_tasks 5)))

let test_platform_uniform_completions () =
  let rng = Prob.Rng.create 21 in
  let hits = Crowd.Platform.batch ~per_hit:10 (mk_tasks 30) in
  let completions =
    Crowd.Platform.uniform_completions rng ~hits ~n_workers:15 ~per_hit:5
  in
  check_int "5 per hit x 3 hits" 15 (List.length completions);
  (* Workers within a HIT are distinct. *)
  List.iter
    (fun hit_id ->
      let members =
        List.filter_map
          (fun (c : Crowd.Platform.completion) ->
            if c.hit_id = hit_id then Some c.worker_id else None)
          completions
      in
      check_int "distinct members" (List.length members)
        (List.length (List.sort_uniq compare members)))
    [ 0; 1; 2 ]

let test_platform_run () =
  let rng = Prob.Rng.create 22 in
  let tasks = mk_tasks 30 in
  let hits = Crowd.Platform.batch ~per_hit:10 tasks in
  let qualities = Array.make 15 0.8 in
  let completions =
    Crowd.Platform.uniform_completions rng ~hits ~n_workers:15 ~per_hit:5
  in
  let collected = Crowd.Platform.run rng ~tasks ~qualities ~completions ~hits in
  Array.iter
    (fun votes -> check_int "5 votes per task" 5 (Array.length votes))
    collected.Crowd.Platform.votes;
  let total_history =
    Array.fold_left
      (fun acc h -> acc + Workers.History.length h)
      0 collected.Crowd.Platform.histories
  in
  check_int "histories cover all votes" (30 * 5) total_history

let test_platform_too_few_workers () =
  let rng = Prob.Rng.create 0 in
  let hits = Crowd.Platform.batch ~per_hit:10 (mk_tasks 10) in
  Alcotest.check_raises "per_hit > n_workers"
    (Invalid_argument "Platform.uniform_completions: per_hit > n_workers")
    (fun () ->
      ignore (Crowd.Platform.uniform_completions rng ~hits ~n_workers:3 ~per_hit:5))

let test_platform_dangling () =
  let rng = Prob.Rng.create 0 in
  let tasks = mk_tasks 10 in
  let hits = Crowd.Platform.batch ~per_hit:10 tasks in
  Alcotest.check_raises "dangling worker"
    (Invalid_argument "Platform.run: dangling worker id") (fun () ->
      ignore
        (Crowd.Platform.run rng ~tasks ~qualities:[| 0.8 |]
           ~completions:[ { Crowd.Platform.hit_id = 0; worker_id = 3 } ]
           ~hits))

(* ---- Amt_dataset ----------------------------------------------------------------- *)

let dataset = lazy (Crowd.Amt_dataset.generate (Prob.Rng.create 1234))

let test_amt_shape () =
  let d = Lazy.force dataset in
  check_int "600 tasks" 600 (Array.length d.Crowd.Amt_dataset.tasks);
  check_int "128 workers" 128 (Array.length d.Crowd.Amt_dataset.true_qualities);
  Array.iter
    (fun votes -> check_int "20 votes per task" 20 (Array.length votes))
    d.Crowd.Amt_dataset.votes

let test_amt_statistics () =
  let s = Crowd.Amt_dataset.statistics (Lazy.force dataset) in
  check_int "power workers answered all" 2 s.Crowd.Amt_dataset.answered_all;
  check_int "single-HIT workers" 67 s.Crowd.Amt_dataset.answered_min;
  check_close 1e-9 "mean answers 93.75" 93.75 s.Crowd.Amt_dataset.mean_answers_per_worker;
  check_close 0.03 "mean quality ~0.71" 0.715 s.Crowd.Amt_dataset.mean_estimated_quality;
  check_bool "plenty of >0.8 workers" true (s.Crowd.Amt_dataset.above_080 >= 25)

let test_amt_votes_are_distinct_workers () =
  let d = Lazy.force dataset in
  Array.iter
    (fun votes ->
      let ids = Array.to_list (Array.map fst votes) in
      check_int "distinct voters per task" (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    d.Crowd.Amt_dataset.votes

let test_amt_balanced_truth () =
  let d = Lazy.force dataset in
  let zeros =
    Array.fold_left
      (fun acc t -> if Vote.equal (Crowd.Task.truth_exn t) Vote.No then acc + 1 else acc)
      0 d.Crowd.Amt_dataset.tasks
  in
  check_int "balanced" 300 zeros

let test_amt_candidate_pool () =
  let d = Lazy.force dataset in
  let costs = Array.make 128 0.05 in
  let pool = Crowd.Amt_dataset.candidate_pool d ~costs ~task_id:0 in
  check_int "20 candidates" 20 (Workers.Pool.size pool);
  Array.iter
    (fun q -> check_bool "clamped" true (q >= 0.01 && q <= 0.99))
    (Workers.Pool.qualities pool);
  Alcotest.check_raises "bad task" (Invalid_argument "Amt_dataset.candidate_pool: task id")
    (fun () -> ignore (Crowd.Amt_dataset.candidate_pool d ~costs ~task_id:600))

let test_amt_task_votes_prefix () =
  let d = Lazy.force dataset in
  let all = Crowd.Amt_dataset.task_votes d ~task_id:5 ~max_votes:20 in
  let prefix = Crowd.Amt_dataset.task_votes d ~task_id:5 ~max_votes:7 in
  check_int "prefix length" 7 (Array.length prefix);
  Array.iteri (fun i v -> check_bool "is prefix" true (v = all.(i))) prefix

let test_amt_estimation_noise_bounded () =
  (* Estimated quality should track the latent quality for heavy workers
     (many graded answers). *)
  let d = Lazy.force dataset in
  Array.iteri
    (fun worker h ->
      if Workers.History.length h >= 200 then
        check_close 0.08 "heavy workers well estimated"
          d.Crowd.Amt_dataset.true_qualities.(worker)
          d.Crowd.Amt_dataset.estimated_qualities.(worker))
    d.Crowd.Amt_dataset.histories

let test_amt_param_validation () =
  Alcotest.check_raises "seats"
    (Invalid_argument "Amt_dataset: votes_per_task > n_workers") (fun () ->
      ignore
        (Crowd.Amt_dataset.generate
           ~params:
             {
               Crowd.Amt_dataset.default_params with
               n_workers = 10;
               n_power_workers = 1;
               n_single_workers = 2;
             }
           (Prob.Rng.create 0)))

let test_amt_custom_params () =
  let params =
    {
      Crowd.Amt_dataset.n_tasks = 60;
      tasks_per_hit = 10;
      votes_per_task = 8;
      n_workers = 24;
      n_power_workers = 1;
      n_single_workers = 6;
    }
  in
  let d = Crowd.Amt_dataset.generate ~params (Prob.Rng.create 9) in
  check_int "tasks" 60 (Array.length d.Crowd.Amt_dataset.tasks);
  Array.iter
    (fun votes -> check_int "votes per task" 8 (Array.length votes))
    d.Crowd.Amt_dataset.votes;
  let s = Crowd.Amt_dataset.statistics d in
  check_int "one power worker" 1 s.Crowd.Amt_dataset.answered_all

(* ---- Multi_dataset ------------------------------------------------------------------ *)

let multi_dataset = lazy (Crowd.Multi_dataset.generate (Prob.Rng.create 606))

let test_multi_dataset_shape () =
  let d = Lazy.force multi_dataset in
  check_int "tasks" 200 (Array.length d.Crowd.Multi_dataset.truths);
  check_int "workers" 40 (Array.length d.Crowd.Multi_dataset.true_matrices);
  Array.iter
    (fun votes ->
      check_int "7 votes per task" 7 (Array.length votes);
      let ids = Array.to_list (Array.map fst votes) in
      check_int "distinct voters" 7 (List.length (List.sort_uniq compare ids)))
    d.Crowd.Multi_dataset.votes;
  Array.iter
    (fun truth -> check_bool "truth in range" true (truth >= 0 && truth < 3))
    d.Crowd.Multi_dataset.truths

let test_multi_dataset_bv_beats_plurality () =
  let d = Lazy.force multi_dataset in
  let bv = Crowd.Multi_dataset.grade d Voting.Multiclass.bayesian in
  let plurality = Crowd.Multi_dataset.grade d Voting.Multiclass.plurality in
  check_bool "BV at least plurality - noise" true (bv >= plurality -. 0.01);
  check_bool "BV accurate" true (bv > 0.75)

let test_multi_dataset_spammer_recall () =
  let d = Lazy.force multi_dataset in
  check_bool "most spammers flagged from estimates" true
    (Crowd.Multi_dataset.spammer_recall d >= 0.8)

let test_multi_dataset_estimation_quality () =
  (* Estimated matrices of busy workers should be close to the truth in
     spammer-score terms. *)
  let d = Lazy.force multi_dataset in
  let errs =
    Array.mapi
      (fun i est ->
        Float.abs
          (Workers.Spammer.score est
          -. Workers.Spammer.score d.Crowd.Multi_dataset.true_matrices.(i)))
      d.Crowd.Multi_dataset.estimated_matrices
  in
  check_bool "mean score error small" true (Prob.Stats.mean errs < 0.12)

let test_multi_dataset_validation () =
  Alcotest.check_raises "votes per task"
    (Invalid_argument "Multi_dataset: votes_per_task > n_workers") (fun () ->
      ignore
        (Crowd.Multi_dataset.generate
           ~params:
             { Crowd.Multi_dataset.default_params with n_workers = 3; votes_per_task = 5 }
           (Prob.Rng.create 0)))

(* ---- Votes_io ---------------------------------------------------------------------- *)

let sample_records =
  [
    { Crowd.Votes_io.task = 0; worker = 0; vote = 1; truth = Some 1 };
    { Crowd.Votes_io.task = 0; worker = 1; vote = 0; truth = Some 1 };
    { Crowd.Votes_io.task = 1; worker = 0; vote = 0; truth = None };
  ]

let test_votes_io_roundtrip () =
  let parsed = Crowd.Votes_io.of_csv_string (Crowd.Votes_io.to_csv_string sample_records) in
  check_bool "roundtrip" true (parsed = sample_records)

let test_votes_io_parsing () =
  let records =
    Crowd.Votes_io.of_csv_string
      "task,worker,vote,truth\n# comment\n0, 3, 1, 1\n\n1,2,0,\n2,0,1\n"
  in
  check_int "three records" 3 (List.length records);
  (match records with
  | [ a; b; c ] ->
      check_int "task" 0 a.Crowd.Votes_io.task;
      check_int "worker" 3 a.Crowd.Votes_io.worker;
      check_bool "truth present" true (a.Crowd.Votes_io.truth = Some 1);
      check_bool "empty truth" true (b.Crowd.Votes_io.truth = None);
      check_bool "3-column form" true (c.Crowd.Votes_io.truth = None)
  | _ -> Alcotest.fail "wrong shape");
  try
    ignore (Crowd.Votes_io.of_csv_string "0,-1,0\n");
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let test_votes_io_dimensions () =
  let t, w, l = Crowd.Votes_io.dimensions sample_records in
  check_int "tasks" 2 t;
  check_int "workers" 2 w;
  check_int "labels" 2 l;
  check_bool "empty" true (Crowd.Votes_io.dimensions [] = (0, 0, 0))

let test_votes_io_histories () =
  let hs = Crowd.Votes_io.histories sample_records in
  check_int "two workers" 2 (Array.length hs);
  check_int "worker 0 graded once" 1 (Workers.History.graded_count hs.(0));
  check_int "worker 0 answered twice" 2 (Workers.History.length hs.(0))

let test_votes_io_amt_export () =
  let dataset = Lazy.force dataset in
  let records = Crowd.Votes_io.of_amt_dataset dataset in
  check_int "600 x 20 votes" (600 * 20) (List.length records);
  let t, w, _ = Crowd.Votes_io.dimensions records in
  check_int "tasks" 600 t;
  check_int "workers" 128 w;
  (* Gold estimation over the export matches the dataset's own estimates. *)
  let hs = Crowd.Votes_io.histories records in
  Array.iteri
    (fun i h ->
      match Workers.History.empirical_quality h with
      | Some q -> check_close 1e-9 "matches dataset estimate"
          dataset.Crowd.Amt_dataset.estimated_qualities.(i) q
      | None -> Alcotest.fail "worker with no graded answers")
    hs

(* ---- Calibration ------------------------------------------------------------------- *)

let test_calibration_counters () =
  let t = Crowd.Calibration.create ~bins:5 () in
  Crowd.Calibration.observe t ~confidence:0.55 ~correct:true;
  Crowd.Calibration.observe t ~confidence:0.55 ~correct:false;
  Crowd.Calibration.observe t ~confidence:0.95 ~correct:true;
  let r = Crowd.Calibration.report t in
  check_int "samples" 3 r.Crowd.Calibration.samples;
  check_int "two bins occupied" 2 (List.length r.Crowd.Calibration.bins);
  (match r.Crowd.Calibration.bins with
  | low :: _ ->
      check_int "low bin count" 2 low.Crowd.Calibration.count;
      check_close 1e-9 "low bin accuracy" 0.5 low.Crowd.Calibration.empirical_accuracy
  | [] -> Alcotest.fail "no bins");
  Alcotest.check_raises "confidence range"
    (Invalid_argument "Calibration.observe: confidence outside [0.5, 1]") (fun () ->
      Crowd.Calibration.observe t ~confidence:0.3 ~correct:true)

let test_calibration_brier () =
  let t = Crowd.Calibration.create () in
  Crowd.Calibration.observe t ~confidence:1.0 ~correct:true;
  Crowd.Calibration.observe t ~confidence:0.5 ~correct:false;
  let r = Crowd.Calibration.report t in
  (* Brier = ((1-1)^2 + (0.5-0)^2) / 2 = 0.125 *)
  check_close 1e-9 "brier" 0.125 r.Crowd.Calibration.brier

let test_calibration_model_holds () =
  (* When the worker model is exact, BV's confidence must be calibrated:
     ECE near zero on a large simulation. *)
  let rng = Prob.Rng.create 2718 in
  let qualities = [| 0.85; 0.7; 0.65; 0.6; 0.55 |] in
  let r = Crowd.Calibration.of_simulation rng ~qualities ~alpha:0.5 ~tasks:60_000 in
  check_bool "ECE small when model holds" true
    (r.Crowd.Calibration.expected_calibration_error < 0.01);
  List.iter
    (fun b ->
      if b.Crowd.Calibration.count > 2_000 then
        check_close 0.03 "bin-level calibration" b.Crowd.Calibration.mean_confidence
          b.Crowd.Calibration.empirical_accuracy)
    r.Crowd.Calibration.bins

let test_calibration_empty () =
  let r = Crowd.Calibration.report (Crowd.Calibration.create ()) in
  check_bool "nan scores" true (Float.is_nan r.Crowd.Calibration.brier);
  check_int "no bins" 0 (List.length r.Crowd.Calibration.bins)

(* ---- Difficulty ------------------------------------------------------------------- *)

let test_difficulty_formula () =
  check_close 1e-12 "d = 0 keeps quality" 0.8
    (Crowd.Difficulty.effective_quality ~quality:0.8 ~difficulty:0.);
  check_close 1e-12 "d = 1 coins everyone" 0.5
    (Crowd.Difficulty.effective_quality ~quality:0.95 ~difficulty:1.);
  check_close 1e-12 "midpoint" 0.65
    (Crowd.Difficulty.effective_quality ~quality:0.8 ~difficulty:0.5);
  Alcotest.check_raises "difficulty range" (Invalid_argument "Difficulty: difficulty")
    (fun () -> ignore (Crowd.Difficulty.effective_quality ~quality:0.8 ~difficulty:1.5))

let test_difficulty_sampling =
  qtest "difficulties lie in [0, spread]"
    QCheck2.Gen.(pair (float_range 0. 1.) (int_range 0 2000))
    (fun (spread, seed) ->
      let rng = Prob.Rng.create seed in
      Array.for_all
        (fun d -> d >= 0. && d <= spread)
        (Crowd.Difficulty.sample_difficulties rng ~spread ~n:50))

let test_difficulty_zero_spread_matches_jq () =
  (* With spread 0 the model holds, so realized accuracy must match the
     predicted JQ. *)
  let rng = Prob.Rng.create 321 in
  let jury =
    Workers.Pool.of_list
      (List.init 5 (fun id ->
           Workers.Worker.make ~id ~quality:(0.6 +. (0.06 *. float_of_int id)) ~cost:0. ()))
  in
  let o = Crowd.Difficulty.campaign rng ~jury ~alpha:0.5 ~spread:0. ~tasks:30_000 in
  check_close 0.01 "model holds" o.Crowd.Difficulty.predicted_jq
    o.Crowd.Difficulty.realized_accuracy

let test_difficulty_hurts () =
  let rng = Prob.Rng.create 322 in
  let jury =
    Workers.Pool.of_list
      (List.init 5 (fun id -> Workers.Worker.make ~id ~quality:0.75 ~cost:0. ()))
  in
  let easy = Crowd.Difficulty.campaign rng ~jury ~alpha:0.5 ~spread:0. ~tasks:20_000 in
  let hard = Crowd.Difficulty.campaign rng ~jury ~alpha:0.5 ~spread:0.9 ~tasks:20_000 in
  check_bool "hard tasks hurt realized accuracy" true
    (hard.Crowd.Difficulty.realized_accuracy
    < easy.Crowd.Difficulty.realized_accuracy -. 0.02)

(* ---- Campaign ----------------------------------------------------------------------- *)

let test_campaign_validation () =
  let system =
    {
      Crowd.Campaign.name = "id";
      select = (fun _ ~alpha:_ ~budget:_ pool -> pool);
      aggregate =
        (fun _ ~alpha ~qualities voting ->
          Voting.Bayesian.decide_exact ~alpha ~qualities voting);
    }
  in
  Alcotest.check_raises "no tasks" (Invalid_argument "Campaign.run: no tasks")
    (fun () ->
      ignore
        (Crowd.Campaign.run (Prob.Rng.create 0) system ~alpha:0.5 ~budget:1.
           ~candidates:(fun _ -> Workers.Pool.of_list [])
           ~tasks:[||]))

let test_campaign_uniform_accuracy () =
  let system =
    {
      Crowd.Campaign.name = "take-all";
      select = (fun _ ~alpha:_ ~budget:_ pool -> pool);
      aggregate =
        (fun _ ~alpha ~qualities voting ->
          Voting.Bayesian.decide_exact ~alpha ~qualities voting);
    }
  in
  let pool =
    Workers.Pool.of_list
      (List.init 5 (fun id -> Workers.Worker.make ~id ~quality:0.8 ~cost:0.1 ()))
  in
  let r =
    Crowd.Campaign.run_uniform (Prob.Rng.create 1) system ~alpha:0.5 ~budget:1.
      ~pool ~n_tasks:10_000
  in
  let predicted = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities:(Workers.Pool.qualities pool) in
  check_close 0.015 "take-all campaign = full-jury JQ" predicted r.Crowd.Campaign.accuracy;
  check_close 1e-9 "jury size" 5. r.Crowd.Campaign.mean_jury_size;
  check_close 1e-9 "jury cost" 0.5 r.Crowd.Campaign.mean_jury_cost

(* ---- Evaluate ---------------------------------------------------------------------- *)

let test_evaluate_accuracy_reasonable () =
  let d = Lazy.force dataset in
  let grade =
    Crowd.Evaluate.strategy_on_dataset ~strategy:Bayesian.strategy ~z:20 d
  in
  check_int "all tasks" 600 grade.Crowd.Evaluate.tasks;
  check_bool "BV with 20 votes is accurate" true (grade.Crowd.Evaluate.accuracy > 0.9);
  check_bool "JQ predicts accuracy" true
    (Float.abs (grade.Crowd.Evaluate.accuracy -. grade.Crowd.Evaluate.average_jq) < 0.05)

let test_evaluate_monotone_in_z () =
  let d = Lazy.force dataset in
  let acc z =
    (Crowd.Evaluate.strategy_on_dataset ~strategy:Bayesian.strategy ~z d)
      .Crowd.Evaluate.accuracy
  in
  check_bool "more votes help" true (acc 15 >= acc 3 -. 0.02)

let test_evaluate_bv_beats_mv () =
  let d = Lazy.force dataset in
  let bv = Crowd.Evaluate.strategy_on_dataset ~strategy:Bayesian.strategy ~z:9 d in
  let mv = Crowd.Evaluate.strategy_on_dataset ~strategy:Classic.majority ~z:9 d in
  check_bool "BV >= MV on realized data" true
    (bv.Crowd.Evaluate.accuracy >= mv.Crowd.Evaluate.accuracy -. 0.01)

let test_evaluate_juries () =
  let d = Lazy.force dataset in
  (* Jury per task: its first three voters, with estimated qualities. *)
  let juries =
    Array.init 600 (fun task_id ->
        let votes = Crowd.Amt_dataset.task_votes d ~task_id ~max_votes:3 in
        Workers.Pool.of_list
          (List.map
             (fun (wid, _) ->
               Workers.Worker.make ~id:wid
                 ~quality:
                   (Crowd.Amt_dataset.clamp_quality
                      d.Crowd.Amt_dataset.estimated_qualities.(wid))
                 ~cost:0. ())
             (Array.to_list votes)))
  in
  let acc = Crowd.Evaluate.accuracy_of_juries ~strategy:Bayesian.strategy ~juries d in
  check_bool "in range" true (acc > 0.6 && acc <= 1.)

let test_evaluate_validation () =
  let d = Lazy.force dataset in
  Alcotest.check_raises "z" (Invalid_argument "Evaluate.strategy_on_dataset: z <= 0")
    (fun () ->
      ignore (Crowd.Evaluate.strategy_on_dataset ~strategy:Bayesian.strategy ~z:0 d));
  Alcotest.check_raises "jury arity"
    (Invalid_argument "Evaluate.accuracy_of_juries: one jury per task required")
    (fun () ->
      ignore
        (Crowd.Evaluate.accuracy_of_juries ~strategy:Bayesian.strategy ~juries:[||] d))

(* ---- Online ------------------------------------------------------------------ *)

let online_pool () =
  Workers.Pool.of_list
    (List.init 12 (fun id ->
         Workers.Worker.make ~id
           ~quality:(0.55 +. (0.03 *. float_of_int id))
           ~cost:(0.02 +. (0.01 *. float_of_int id))
           ()))

let test_online_stops_confident () =
  let rng = Prob.Rng.create 91 in
  let o =
    Crowd.Online.run rng ~confidence:0.9 ~budget:10. ~alpha:0.5 ~truth:Vote.No
      (online_pool ())
  in
  check_bool "confident or exhausted" true
    (Float.max o.Crowd.Online.posterior_no (1. -. o.Crowd.Online.posterior_no) >= 0.9
    || o.Crowd.Online.votes_used = 12);
  check_bool "cost accounted" true (o.Crowd.Online.cost > 0.);
  check_int "asked matches votes" o.Crowd.Online.votes_used
    (List.length o.Crowd.Online.asked)

let test_online_budget_respected () =
  let rng = Prob.Rng.create 92 in
  for _ = 1 to 50 do
    let o =
      Crowd.Online.run rng ~policy:Crowd.Online.By_cost ~confidence:0.999
        ~budget:0.08 ~alpha:0.5 ~truth:Vote.Yes (online_pool ())
    in
    check_bool "never over budget" true (o.Crowd.Online.cost <= 0.08 +. 1e-9)
  done

let test_online_no_duplicate_asks () =
  let rng = Prob.Rng.create 93 in
  let o =
    Crowd.Online.run rng ~policy:Crowd.Online.Random_order ~confidence:0.9999
      ~budget:10. ~alpha:0.5 ~truth:Vote.No (online_pool ())
  in
  check_int "asks are distinct" (List.length o.Crowd.Online.asked)
    (List.length (List.sort_uniq compare o.Crowd.Online.asked))

let test_online_accuracy_meets_confidence () =
  (* With an ample budget, stopping at 95% posterior confidence should
     realize ~95%+ accuracy. *)
  let rng = Prob.Rng.create 94 in
  let s =
    Crowd.Online.simulate_many rng ~policy:Crowd.Online.By_information_gain
      ~confidence:0.95 ~budget:10. ~alpha:0.5 ~tasks:500 (online_pool ())
  in
  check_bool "accuracy >= 90%" true (s.Crowd.Online.accuracy >= 0.90);
  check_bool "uses a fraction of the pool" true (s.Crowd.Online.mean_votes < 12.)

let test_online_gain_policy_cheaper () =
  (* Information gain should spend no more than random order for the same
     confidence target (statistically). *)
  let pool = online_pool () in
  let run policy seed =
    Crowd.Online.simulate_many (Prob.Rng.create seed) ~policy ~confidence:0.9
      ~budget:10. ~alpha:0.5 ~tasks:400 pool
  in
  let gain = run Crowd.Online.By_information_gain 95 in
  let random = run Crowd.Online.Random_order 95 in
  check_bool "gain spends less" true
    (gain.Crowd.Online.mean_cost <= random.Crowd.Online.mean_cost +. 0.01)

let test_online_entropy_gain_properties () =
  let g = Crowd.Online.expected_entropy_gain ~posterior_no:0.5 ~quality:0.9 in
  check_bool "informative worker gains" true (g > 0.);
  check_close 1e-12 "coin worker gains nothing"
    0. (Crowd.Online.expected_entropy_gain ~posterior_no:0.5 ~quality:0.5);
  let g_sure = Crowd.Online.expected_entropy_gain ~posterior_no:0.999 ~quality:0.9 in
  check_bool "already-confident posterior gains little" true (g_sure < g)

let test_online_validation () =
  let rng = Prob.Rng.create 0 in
  Alcotest.check_raises "confidence" (Invalid_argument "Online.run: confidence outside (0.5, 1]")
    (fun () ->
      ignore
        (Crowd.Online.run rng ~confidence:0.4 ~budget:1. ~alpha:0.5 ~truth:Vote.No
           (online_pool ())));
  Alcotest.check_raises "tasks" (Invalid_argument "Online.simulate_many: tasks <= 0")
    (fun () ->
      ignore
        (Crowd.Online.simulate_many rng ~confidence:0.9 ~budget:1. ~alpha:0.5
           ~tasks:0 (online_pool ())))

let () =
  Alcotest.run "crowd"
    [
      ( "task",
        [
          Alcotest.test_case "make" `Quick test_task_make;
          Alcotest.test_case "validation" `Quick test_task_validation;
          Alcotest.test_case "multi" `Quick test_task_multi;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "vote frequency" `Slow test_simulate_vote_frequency;
          Alcotest.test_case "truth frequency" `Slow test_simulate_truth_frequency;
          test_simulate_voting_shape;
          Alcotest.test_case "multi vote" `Quick test_simulate_multi_vote;
          Alcotest.test_case "MC JQ matches analytic" `Slow test_empirical_jq_matches_exact;
        ] );
      ( "platform",
        [
          Alcotest.test_case "batch" `Quick test_platform_batch;
          Alcotest.test_case "uniform completions" `Quick test_platform_uniform_completions;
          Alcotest.test_case "run" `Quick test_platform_run;
          Alcotest.test_case "too few workers" `Quick test_platform_too_few_workers;
          Alcotest.test_case "dangling ids" `Quick test_platform_dangling;
        ] );
      ( "amt_dataset",
        [
          Alcotest.test_case "shape" `Quick test_amt_shape;
          Alcotest.test_case "statistics" `Quick test_amt_statistics;
          Alcotest.test_case "distinct voters" `Quick test_amt_votes_are_distinct_workers;
          Alcotest.test_case "balanced truth" `Quick test_amt_balanced_truth;
          Alcotest.test_case "candidate pool" `Quick test_amt_candidate_pool;
          Alcotest.test_case "task votes prefix" `Quick test_amt_task_votes_prefix;
          Alcotest.test_case "estimation noise" `Quick test_amt_estimation_noise_bounded;
          Alcotest.test_case "param validation" `Quick test_amt_param_validation;
          Alcotest.test_case "custom params" `Quick test_amt_custom_params;
        ] );
      ( "multi_dataset",
        [
          Alcotest.test_case "shape" `Quick test_multi_dataset_shape;
          Alcotest.test_case "BV beats plurality" `Quick test_multi_dataset_bv_beats_plurality;
          Alcotest.test_case "spammer recall" `Quick test_multi_dataset_spammer_recall;
          Alcotest.test_case "estimation quality" `Quick test_multi_dataset_estimation_quality;
          Alcotest.test_case "validation" `Quick test_multi_dataset_validation;
        ] );
      ( "votes_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_votes_io_roundtrip;
          Alcotest.test_case "parsing" `Quick test_votes_io_parsing;
          Alcotest.test_case "dimensions" `Quick test_votes_io_dimensions;
          Alcotest.test_case "histories" `Quick test_votes_io_histories;
          Alcotest.test_case "AMT export" `Quick test_votes_io_amt_export;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "counters" `Quick test_calibration_counters;
          Alcotest.test_case "brier" `Quick test_calibration_brier;
          Alcotest.test_case "model holds" `Slow test_calibration_model_holds;
          Alcotest.test_case "empty" `Quick test_calibration_empty;
        ] );
      ( "difficulty",
        [
          Alcotest.test_case "formula" `Quick test_difficulty_formula;
          test_difficulty_sampling;
          Alcotest.test_case "zero spread matches JQ" `Slow
            test_difficulty_zero_spread_matches_jq;
          Alcotest.test_case "difficulty hurts" `Slow test_difficulty_hurts;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "validation" `Quick test_campaign_validation;
          Alcotest.test_case "take-all accuracy" `Slow test_campaign_uniform_accuracy;
        ] );
      ( "online",
        [
          Alcotest.test_case "stops when confident" `Quick test_online_stops_confident;
          Alcotest.test_case "budget respected" `Quick test_online_budget_respected;
          Alcotest.test_case "no duplicate asks" `Quick test_online_no_duplicate_asks;
          Alcotest.test_case "accuracy meets confidence" `Slow
            test_online_accuracy_meets_confidence;
          Alcotest.test_case "gain policy cheaper" `Slow test_online_gain_policy_cheaper;
          Alcotest.test_case "entropy gain" `Quick test_online_entropy_gain_properties;
          Alcotest.test_case "validation" `Quick test_online_validation;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "accuracy reasonable" `Quick test_evaluate_accuracy_reasonable;
          Alcotest.test_case "monotone in z" `Quick test_evaluate_monotone_in_z;
          Alcotest.test_case "BV beats MV" `Quick test_evaluate_bv_beats_mv;
          Alcotest.test_case "jury grading" `Quick test_evaluate_juries;
          Alcotest.test_case "validation" `Quick test_evaluate_validation;
        ] );
    ]
