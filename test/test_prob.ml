(* Tests for the numeric substrate: RNG, log-space arithmetic, compensated
   summation, distributions, Poisson-binomial DP, statistics, histograms. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Rng ----------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Prob.Rng.create 42 and b = Prob.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prob.Rng.bits64 a) (Prob.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Prob.Rng.create 1 and b = Prob.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prob.Rng.bits64 a) (Prob.Rng.bits64 b)) then differs := true
  done;
  check_bool "streams differ" true !differs

let test_rng_copy () =
  let a = Prob.Rng.create 7 in
  ignore (Prob.Rng.bits64 a);
  let b = Prob.Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy tracks" (Prob.Rng.bits64 a) (Prob.Rng.bits64 b)
  done

let test_rng_split_decorrelates () =
  let parent = Prob.Rng.create 13 in
  let child = Prob.Rng.split parent in
  (* The child stream must not be a shifted copy of the parent's. *)
  let equal_count = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prob.Rng.bits64 parent) (Prob.Rng.bits64 child) then
      incr equal_count
  done;
  check_bool "no collisions" true (!equal_count = 0)

let test_rng_int_bounds =
  qtest "Rng.int stays within bounds"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 10_000))
    (fun (bound, seed) ->
      let g = Prob.Rng.create seed in
      let v = Prob.Rng.int g bound in
      v >= 0 && v < bound)

let test_rng_int_invalid () =
  let g = Prob.Rng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prob.Rng.int g 0))

let test_rng_unit_float_range () =
  let g = Prob.Rng.create 5 in
  for _ = 1 to 10_000 do
    let u = Prob.Rng.unit_float g in
    if u < 0. || u >= 1. then Alcotest.failf "unit_float out of range: %f" u
  done

let test_rng_int_uniform () =
  (* Coarse uniformity: all 10 cells close to expectation. *)
  let g = Prob.Rng.create 99 in
  let cells = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Prob.Rng.int g 10 in
    cells.(i) <- cells.(i) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "cell within bounds" true (c > (n / 10) - 700 && c < (n / 10) + 700))
    cells

let test_rng_bernoulli_frequency () =
  let g = Prob.Rng.create 17 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prob.Rng.bernoulli g 0.3 then incr hits
  done;
  check_close 0.02 "p=0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_gaussian_moments () =
  let g = Prob.Rng.create 23 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Prob.Rng.gaussian g ~mu:2. ~sigma:3.) in
  check_close 0.1 "mean" 2. (Prob.Stats.mean xs);
  check_close 0.1 "stddev" 3. (Prob.Stats.stddev xs)

let test_rng_shuffle_multiset () =
  let g = Prob.Rng.create 3 in
  let arr = Array.init 100 Fun.id in
  Prob.Rng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 100 Fun.id) sorted

let test_rng_shuffle_moves () =
  let g = Prob.Rng.create 3 in
  let arr = Array.init 100 Fun.id in
  Prob.Rng.shuffle g arr;
  check_bool "some element moved" true
    (Array.exists (fun i -> arr.(i) <> i) (Array.init 100 Fun.id))

let test_rng_sample_without_replacement () =
  let g = Prob.Rng.create 11 in
  let arr = Array.init 30 Fun.id in
  let sample = Prob.Rng.sample_without_replacement g 10 arr in
  check_int "size" 10 (Array.length sample);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      check_bool "member" true (x >= 0 && x < 30);
      check_bool "distinct" false (Hashtbl.mem seen x);
      Hashtbl.add seen x ())
    sample

let test_rng_sample_full () =
  let g = Prob.Rng.create 11 in
  let arr = [| 1; 2; 3 |] in
  let s = Prob.Rng.sample_without_replacement g 3 arr in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "whole array" [| 1; 2; 3 |] sorted

let test_rng_choose () =
  let g = Prob.Rng.create 1 in
  check_int "singleton" 9 (Prob.Rng.choose g [| 9 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Prob.Rng.choose g ([||] : int array)))

(* ---- Log_space ------------------------------------------------------ *)

let test_logit_known () =
  check_float "logit 0.5" 0. (Prob.Log_space.logit 0.5);
  check_close 1e-12 "logit 0.9" (log 9.) (Prob.Log_space.logit 0.9);
  check_close 1e-12 "logit symmetric" (-.Prob.Log_space.logit 0.9)
    (Prob.Log_space.logit 0.1)

let test_logit_invalid () =
  List.iter
    (fun q ->
      Alcotest.check_raises "logit domain"
        (Invalid_argument "Log_space.logit: q must lie in (0, 1)") (fun () ->
          ignore (Prob.Log_space.logit q)))
    [ 0.; 1.; -0.5; 1.5 ]

let test_log_add =
  qtest "log-sum-exp of two matches direct"
    QCheck2.Gen.(pair (float_range 1e-6 1.) (float_range 1e-6 1.))
    (fun (a, b) ->
      let l = Prob.Log_space.add (log a) (log b) in
      Float.abs (exp l -. (a +. b)) < 1e-9)

let test_log_add_neg_infinity () =
  check_float "add neg_inf left" 1.5 (Prob.Log_space.add neg_infinity 1.5);
  check_float "add neg_inf right" 1.5 (Prob.Log_space.add 1.5 neg_infinity);
  check_bool "both neg_inf" true
    (Prob.Log_space.add neg_infinity neg_infinity = neg_infinity)

let test_log_sum () =
  let probs = [ 0.1; 0.2; 0.3; 0.05 ] in
  let l = Prob.Log_space.sum (List.map log probs) in
  check_close 1e-12 "sum" 0.65 (exp l);
  check_bool "empty" true (Prob.Log_space.sum [] = neg_infinity);
  let a = Prob.Log_space.sum_array (Array.of_list (List.map log probs)) in
  check_close 1e-12 "sum_array" 0.65 (exp a)

let test_log_extreme () =
  (* Values that would underflow in linear space. *)
  let l = Prob.Log_space.add (-800.) (-800.) in
  check_close 1e-9 "underflow-free" (-800. +. log 2.) l

let test_of_to_prob () =
  check_float "roundtrip" 0.25 (Prob.Log_space.to_prob (Prob.Log_space.of_prob 0.25));
  check_bool "zero" true (Prob.Log_space.of_prob 0. = neg_infinity)

(* ---- Kahan ---------------------------------------------------------- *)

let test_kahan_simple () =
  check_float "sum_list" 6. (Prob.Kahan.sum_list [ 1.; 2.; 3. ]);
  check_float "sum_array" 6. (Prob.Kahan.sum_array [| 1.; 2.; 3. |])

let test_kahan_pathological () =
  (* Naive summation loses the ones entirely. *)
  check_float "compensated" 2. (Prob.Kahan.sum_list [ 1.; 1e100; 1.; -1e100 ])

let test_kahan_many_small () =
  let n = 1_000_000 in
  let total = Prob.Kahan.sum_array (Array.make n 0.1) in
  check_close 1e-6 "1e6 x 0.1" (float_of_int n *. 0.1) total

let test_kahan_incremental () =
  let acc = Prob.Kahan.create () in
  for _ = 1 to 10 do
    Prob.Kahan.add acc 0.1
  done;
  check_close 1e-12 "incremental" 1.0 (Prob.Kahan.total acc)

(* ---- Distributions -------------------------------------------------- *)

let test_erf_known () =
  check_float "erf 0" 0. (Prob.Distributions.erf 0.);
  check_close 1e-6 "erf 1" 0.8427008 (Prob.Distributions.erf 1.);
  check_close 1e-6 "erf -1" (-0.8427008) (Prob.Distributions.erf (-1.));
  check_close 1e-6 "erf 2" 0.9953223 (Prob.Distributions.erf 2.)

let test_gaussian_cdf () =
  check_close 1e-7 "cdf at mean" 0.5 (Prob.Distributions.gaussian_cdf ~mu:3. ~sigma:2. 3.);
  check_close 1e-4 "cdf one sigma" 0.8413
    (Prob.Distributions.gaussian_cdf ~mu:0. ~sigma:1. 1.)

let test_gaussian_pdf () =
  check_close 1e-9 "pdf peak" (1. /. sqrt (2. *. Float.pi))
    (Prob.Distributions.gaussian_pdf ~mu:0. ~sigma:1. 0.)

let test_clamped_range =
  qtest "clamped draws stay in range" QCheck2.Gen.(int_range 0 5000) (fun seed ->
      let g = Prob.Rng.create seed in
      let x =
        Prob.Distributions.sample_gaussian_clamped g ~mu:0.7 ~sigma:0.5 ~lo:0.5
          ~hi:0.99
      in
      x >= 0.5 && x <= 0.99)

let test_truncated_range =
  qtest "truncated draws stay in range" QCheck2.Gen.(int_range 0 5000) (fun seed ->
      let g = Prob.Rng.create seed in
      let x =
        Prob.Distributions.sample_gaussian_truncated g ~mu:0.05 ~sigma:0.45
          ~lo:0.01 ~hi:infinity
      in
      x >= 0.01)

let test_truncated_invalid () =
  let g = Prob.Rng.create 0 in
  Alcotest.check_raises "lo >= hi"
    (Invalid_argument "Distributions.sample_gaussian_truncated") (fun () ->
      ignore (Prob.Distributions.sample_gaussian_truncated g ~mu:0. ~sigma:1. ~lo:1. ~hi:1.))

let test_beta_moments () =
  let g = Prob.Rng.create 31 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Prob.Distributions.sample_beta g ~a:2. ~b:5.) in
  Array.iter (fun x -> if x < 0. || x > 1. then Alcotest.fail "beta out of range") xs;
  check_close 0.01 "beta mean" (2. /. 7.) (Prob.Stats.mean xs)

let test_categorical () =
  let g = Prob.Rng.create 41 in
  check_int "point mass" 2 (Prob.Distributions.sample_categorical g [| 0.; 0.; 1.; 0. |]);
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Prob.Distributions.sample_categorical g [| 1.; 2.; 1. |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close 0.02 "weight 2 of 4" 0.5 (float_of_int counts.(1) /. float_of_int n)

let test_categorical_invalid () =
  let g = Prob.Rng.create 0 in
  Alcotest.check_raises "empty" (Invalid_argument "Distributions.sample_categorical: empty")
    (fun () -> ignore (Prob.Distributions.sample_categorical g [||]));
  Alcotest.check_raises "zero mass"
    (Invalid_argument "Distributions.sample_categorical: zero mass") (fun () ->
      ignore (Prob.Distributions.sample_categorical g [| 0.; 0. |]))

(* ---- Poisson_binomial ------------------------------------------------ *)

let prob_gen = QCheck2.Gen.float_range 0. 1.

let test_pb_sums_to_one =
  qtest "pmf sums to 1" QCheck2.Gen.(list_size (int_range 0 30) prob_gen) (fun ps ->
      let ps = Array.of_list ps in
      Float.abs (Prob.Kahan.sum_array (Prob.Poisson_binomial.pmf ps) -. 1.) < 1e-9)

let binom n k =
  let rec go acc i =
    if i > k then acc else go (acc *. float_of_int (n - i + 1) /. float_of_int i) (i + 1)
  in
  go 1. 1

let test_pb_matches_binomial () =
  let p = 0.3 and n = 10 in
  let pmf = Prob.Poisson_binomial.pmf (Array.make n p) in
  for k = 0 to n do
    check_close 1e-12
      (Printf.sprintf "k=%d" k)
      (binom n k *. (p ** float_of_int k) *. ((1. -. p) ** float_of_int (n - k)))
      pmf.(k)
  done

(* Brute-force reference: enumerate all outcome vectors. *)
let brute_force_pmf ps =
  let n = Array.length ps in
  let pmf = Array.make (n + 1) 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let prob = ref 1. and successes = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        prob := !prob *. ps.(i);
        incr successes
      end
      else prob := !prob *. (1. -. ps.(i))
    done;
    pmf.(!successes) <- pmf.(!successes) +. !prob
  done;
  pmf

let test_pb_matches_brute_force =
  qtest ~count:100 "pmf matches enumeration"
    QCheck2.Gen.(list_size (int_range 1 8) prob_gen)
    (fun ps ->
      let ps = Array.of_list ps in
      let dp = Prob.Poisson_binomial.pmf ps in
      let bf = brute_force_pmf ps in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) dp bf)

let test_pb_tail_and_cdf () =
  let ps = [| 0.9; 0.6; 0.6 |] in
  check_float "tail 0" 1. (Prob.Poisson_binomial.tail_at_least ps 0);
  check_float "tail beyond" 0. (Prob.Poisson_binomial.tail_at_least ps 4);
  check_close 1e-12 "tail 3" (0.9 *. 0.6 *. 0.6) (Prob.Poisson_binomial.tail_at_least ps 3);
  check_close 1e-12 "cdf complement" 1.
    (Prob.Poisson_binomial.cdf ps 1 +. Prob.Poisson_binomial.tail_at_least ps 2)

let test_pb_moments () =
  let ps = [| 0.2; 0.5; 0.7 |] in
  check_float "expectation" 1.4 (Prob.Poisson_binomial.expectation ps);
  check_close 1e-12 "variance"
    ((0.2 *. 0.8) +. (0.5 *. 0.5) +. (0.7 *. 0.3))
    (Prob.Poisson_binomial.variance ps)

let test_pb_majority () =
  (* Odd jury (0.9, 0.6, 0.6): at least two correct. *)
  let ps = [| 0.9; 0.6; 0.6 |] in
  let expected =
    (0.9 *. 0.6 *. 0.6)
    +. (0.9 *. 0.6 *. 0.4)
    +. (0.9 *. 0.4 *. 0.6)
    +. (0.1 *. 0.6 *. 0.6)
  in
  check_close 1e-12 "odd majority" expected (Prob.Poisson_binomial.majority_correct ps);
  (* Even jury of coins: > half wins, tie = coin. *)
  check_close 1e-12 "even tie coin" 0.5
    (Prob.Poisson_binomial.majority_correct [| 0.5; 0.5 |]);
  check_float "empty" 0.5 (Prob.Poisson_binomial.majority_correct [||])

let test_pb_invalid () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Poisson_binomial: probability outside [0, 1]") (fun () ->
      ignore (Prob.Poisson_binomial.pmf [| 1.2 |]))

(* ---- Poisson_binomial.Incremental ------------------------------------ *)

let close_pmf a b = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b

let test_pb_incremental_matches_batch =
  (* A random add/remove interleaving must land on the batch pmf of the
     surviving multiset. *)
  qtest ~count:200 "incremental pmf = batch pmf after add/remove interleaving"
    QCheck2.Gen.(pair (list_size (int_range 1 10) prob_gen) (list_size (int_range 1 10) bool))
    (fun (ps, drops) ->
      let t = Prob.Poisson_binomial.Incremental.create () in
      let survivors = ref [] in
      List.iteri
        (fun i p ->
          Prob.Poisson_binomial.Incremental.add t p;
          let drop = match List.nth_opt drops i with Some d -> d | None -> false in
          if drop then Prob.Poisson_binomial.Incremental.remove t p
          else survivors := p :: !survivors)
        ps;
      let batch = Prob.Poisson_binomial.pmf (Array.of_list (List.rev !survivors)) in
      Prob.Poisson_binomial.Incremental.size t = List.length !survivors
      && close_pmf (Prob.Poisson_binomial.Incremental.pmf t) batch)

let test_pb_incremental_tail =
  qtest ~count:100 "incremental tail = batch tail"
    QCheck2.Gen.(list_size (int_range 1 10) prob_gen)
    (fun ps ->
      let t = Prob.Poisson_binomial.Incremental.create () in
      List.iter (Prob.Poisson_binomial.Incremental.add t) ps;
      let arr = Array.of_list ps in
      let n = Array.length arr in
      let ok = ref true in
      for k = 0 to n + 1 do
        if
          Float.abs
            (Prob.Poisson_binomial.Incremental.tail_at_least t k
            -. Prob.Poisson_binomial.tail_at_least arr k)
          > 1e-9
        then ok := false
      done;
      !ok)

let test_pb_incremental_edges () =
  let t = Prob.Poisson_binomial.Incremental.create () in
  check_float "empty pmf" 1. (Prob.Poisson_binomial.Incremental.pmf t).(0);
  (* Degenerate trials: p = 1 shifts the pmf, p = 0 leaves it; both must
     deconvolve back out. *)
  Prob.Poisson_binomial.Incremental.add t 1.0;
  Prob.Poisson_binomial.Incremental.add t 0.0;
  Prob.Poisson_binomial.Incremental.add t 0.7;
  check_close 1e-12 "certain trial shifts" 0.7
    (Prob.Poisson_binomial.Incremental.tail_at_least t 2);
  Prob.Poisson_binomial.Incremental.remove t 1.0;
  Prob.Poisson_binomial.Incremental.remove t 0.0;
  check_close 1e-12 "back to single trial" 0.7
    (Prob.Poisson_binomial.Incremental.tail_at_least t 1);
  Alcotest.check_raises "absent trial"
    (Invalid_argument "Poisson_binomial.Incremental.remove: trial not present")
    (fun () -> Prob.Poisson_binomial.Incremental.remove t 0.123);
  Alcotest.check_raises "range"
    (Invalid_argument "Poisson_binomial.Incremental.add: probability outside [0, 1]")
    (fun () -> Prob.Poisson_binomial.Incremental.add t 1.5)

let test_pb_incremental_periodic_rebuild () =
  let t = Prob.Poisson_binomial.Incremental.create () in
  Prob.Poisson_binomial.Incremental.add t 0.8;
  Prob.Poisson_binomial.Incremental.add t 0.6;
  for _ = 1 to 600 do
    Prob.Poisson_binomial.Incremental.add t 0.7;
    Prob.Poisson_binomial.Incremental.remove t 0.7
  done;
  check_bool "periodic rebuild triggered" true
    (Prob.Poisson_binomial.Incremental.rebuilds t >= 1);
  check_bool "pmf survives the storm" true
    (close_pmf
       (Prob.Poisson_binomial.Incremental.pmf t)
       (Prob.Poisson_binomial.pmf [| 0.8; 0.6 |]))

(* ---- Stats ----------------------------------------------------------- *)

let test_stats_known () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Prob.Stats.mean xs);
  check_close 1e-12 "variance" (32. /. 7.) (Prob.Stats.variance xs);
  let s = Prob.Stats.summarize xs in
  check_float "min" 2. s.Prob.Stats.min;
  check_float "max" 9. s.Prob.Stats.max;
  check_int "count" 8 s.Prob.Stats.count

let test_stats_empty () =
  check_bool "mean nan" true (Float.is_nan (Prob.Stats.mean [||]));
  check_float "variance 0 for singleton" 0. (Prob.Stats.variance [| 5. |])

let test_quantile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "median interpolated" 2.5 (Prob.Stats.median xs);
  check_float "q0" 1. (Prob.Stats.quantile xs 0.);
  check_float "q1" 4. (Prob.Stats.quantile xs 1.);
  check_float "q25" 1.75 (Prob.Stats.quantile xs 0.25);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty data")
    (fun () -> ignore (Prob.Stats.quantile [||] 0.5));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.quantile: p outside [0, 1]") (fun () ->
      ignore (Prob.Stats.quantile xs 1.5))

let test_quantile_nan () =
  (* [Float.compare] gives a total order, so NaN cannot scramble the
     sort silently — it lands at index 0 and is rejected outright. *)
  Alcotest.check_raises "NaN in data"
    (Invalid_argument "Stats.quantile: NaN in data") (fun () ->
      ignore (Prob.Stats.quantile [| 3.; nan; 1.; 2. |] 0.5));
  Alcotest.check_raises "all-NaN data"
    (Invalid_argument "Stats.quantile: NaN in data") (fun () ->
      ignore (Prob.Stats.quantile [| nan |] 0.5));
  Alcotest.check_raises "NaN p"
    (Invalid_argument "Stats.quantile: p outside [0, 1]") (fun () ->
      ignore (Prob.Stats.quantile [| 1.; 2. |] nan));
  (* Signed zeros and infinities still sort correctly under the
     monomorphic compare. *)
  check_float "neg-zero median" 0. (Prob.Stats.median [| 0.; -0.; 0. |]);
  check_float "infinities q0" neg_infinity
    (Prob.Stats.quantile [| infinity; 1.; neg_infinity |] 0.);
  check_float "infinities q1" infinity
    (Prob.Stats.quantile [| infinity; 1.; neg_infinity |] 1.)

let test_confidence_interval () =
  let xs = Array.make 100 3. in
  let lo, hi = Prob.Stats.confidence_interval_95 xs in
  check_float "degenerate lo" 3. lo;
  check_float "degenerate hi" 3. hi

(* ---- Histogram ------------------------------------------------------- *)

let test_histogram_basic () =
  let h = Prob.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  List.iter (Prob.Histogram.add h) [ 0.5; 1.; 3.; 9.9; 10.5; -1. ];
  let counts = Prob.Histogram.counts h in
  check_int "first bucket (incl. below-lo)" 3 counts.(0);
  check_int "second bucket" 1 counts.(1);
  check_int "last bucket (incl. above-hi)" 2 counts.(4);
  check_int "total" 6 (Prob.Histogram.total h);
  let lo, hi = Prob.Histogram.bucket_bounds h 1 in
  check_float "bounds lo" 2. lo;
  check_float "bounds hi" 4. hi

let test_histogram_invalid () =
  Alcotest.check_raises "buckets" (Invalid_argument "Histogram.create: buckets <= 0")
    (fun () -> ignore (Prob.Histogram.create ~lo:0. ~hi:1. ~buckets:0));
  Alcotest.check_raises "range" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Prob.Histogram.create ~lo:1. ~hi:1. ~buckets:3))

let test_ranges () =
  let r = Prob.Histogram.Ranges.create [ 0.01; 0.1; 1. ] in
  List.iter (Prob.Histogram.Ranges.add r) [ 0.; 0.01; 0.05; 0.5; 2.; 100. ];
  Alcotest.(check (array int)) "counts" [| 2; 1; 1; 2 |] (Prob.Histogram.Ranges.counts r);
  check_int "labels" 4 (List.length (Prob.Histogram.Ranges.labels r))

let test_ranges_invalid () =
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Histogram.Ranges.create: edges not increasing") (fun () ->
      ignore (Prob.Histogram.Ranges.create [ 1.; 1. ]))

let () =
  Alcotest.run "prob"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split decorrelates" `Quick test_rng_split_decorrelates;
          test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "unit_float range" `Quick test_rng_unit_float_range;
          Alcotest.test_case "int uniform" `Slow test_rng_int_uniform;
          Alcotest.test_case "bernoulli frequency" `Slow test_rng_bernoulli_frequency;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
          Alcotest.test_case "shuffle moves" `Quick test_rng_shuffle_moves;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "sample full" `Quick test_rng_sample_full;
          Alcotest.test_case "choose" `Quick test_rng_choose;
        ] );
      ( "log_space",
        [
          Alcotest.test_case "logit known" `Quick test_logit_known;
          Alcotest.test_case "logit invalid" `Quick test_logit_invalid;
          test_log_add;
          Alcotest.test_case "add neg_infinity" `Quick test_log_add_neg_infinity;
          Alcotest.test_case "sum" `Quick test_log_sum;
          Alcotest.test_case "extreme" `Quick test_log_extreme;
          Alcotest.test_case "of/to prob" `Quick test_of_to_prob;
        ] );
      ( "kahan",
        [
          Alcotest.test_case "simple" `Quick test_kahan_simple;
          Alcotest.test_case "pathological" `Quick test_kahan_pathological;
          Alcotest.test_case "many small" `Slow test_kahan_many_small;
          Alcotest.test_case "incremental" `Quick test_kahan_incremental;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "erf known" `Quick test_erf_known;
          Alcotest.test_case "gaussian cdf" `Quick test_gaussian_cdf;
          Alcotest.test_case "gaussian pdf" `Quick test_gaussian_pdf;
          test_clamped_range;
          test_truncated_range;
          Alcotest.test_case "truncated invalid" `Quick test_truncated_invalid;
          Alcotest.test_case "beta moments" `Slow test_beta_moments;
          Alcotest.test_case "categorical" `Slow test_categorical;
          Alcotest.test_case "categorical invalid" `Quick test_categorical_invalid;
        ] );
      ( "poisson_binomial",
        [
          test_pb_sums_to_one;
          Alcotest.test_case "matches binomial" `Quick test_pb_matches_binomial;
          test_pb_matches_brute_force;
          Alcotest.test_case "tail and cdf" `Quick test_pb_tail_and_cdf;
          Alcotest.test_case "moments" `Quick test_pb_moments;
          Alcotest.test_case "majority" `Quick test_pb_majority;
          Alcotest.test_case "invalid" `Quick test_pb_invalid;
          test_pb_incremental_matches_batch;
          test_pb_incremental_tail;
          Alcotest.test_case "incremental edges" `Quick test_pb_incremental_edges;
          Alcotest.test_case "incremental periodic rebuild" `Quick
            test_pb_incremental_periodic_rebuild;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "quantile NaN rejection" `Quick test_quantile_nan;
          Alcotest.test_case "confidence interval" `Quick test_confidence_interval;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
          Alcotest.test_case "ranges" `Quick test_ranges;
          Alcotest.test_case "ranges invalid" `Quick test_ranges_invalid;
        ] );
    ]
