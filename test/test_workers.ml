(* Tests for the worker-model substrate: workers, pools, generators,
   confusion matrices, histories, estimators, Dawid-Skene EM. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let w ?name ~id ~q ~c () = Workers.Worker.make ?name ~id ~quality:q ~cost:c ()

(* ---- Worker ---------------------------------------------------------- *)

let test_worker_make () =
  let a = w ~name:"A" ~id:0 ~q:0.77 ~c:9. () in
  check_int "id" 0 (Workers.Worker.id a);
  Alcotest.(check string) "name" "A" (Workers.Worker.name a);
  check_float "quality" 0.77 (Workers.Worker.quality a);
  check_float "cost" 9. (Workers.Worker.cost a);
  Alcotest.(check string) "default name" "w3"
    (Workers.Worker.name (w ~id:3 ~q:0.5 ~c:0. ()))

let test_worker_validation () =
  Alcotest.check_raises "quality > 1"
    (Invalid_argument "Worker.make: quality must lie in [0, 1]") (fun () ->
      ignore (w ~id:0 ~q:1.2 ~c:1. ()));
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Worker.make: cost must be nonnegative") (fun () ->
      ignore (w ~id:0 ~q:0.5 ~c:(-1.) ()))

let test_worker_with_quality () =
  let a = w ~name:"A" ~id:0 ~q:0.6 ~c:2. () in
  let b = Workers.Worker.with_quality a 0.9 in
  check_float "new quality" 0.9 (Workers.Worker.quality b);
  Alcotest.(check string) "name kept" "A" (Workers.Worker.name b);
  check_float "cost kept" 2. (Workers.Worker.cost b)

let test_worker_reliable () =
  check_bool "0.5 reliable" true (Workers.Worker.reliable (w ~id:0 ~q:0.5 ~c:0. ()));
  check_bool "0.49 not" false (Workers.Worker.reliable (w ~id:0 ~q:0.49 ~c:0. ()))

let test_worker_orders () =
  let a = w ~id:0 ~q:0.9 ~c:5. () in
  let b = w ~id:1 ~q:0.7 ~c:1. () in
  let c = w ~id:2 ~q:0.7 ~c:2. () in
  check_bool "quality desc" true (Workers.Worker.compare_by_quality_desc a b < 0);
  check_bool "tie by cost" true (Workers.Worker.compare_by_quality_desc b c < 0);
  check_bool "cost asc" true (Workers.Worker.compare_by_cost b a < 0)

(* ---- Pool ------------------------------------------------------------ *)

let pool3 () =
  Workers.Pool.of_list
    [ w ~id:0 ~q:0.9 ~c:3. (); w ~id:1 ~q:0.6 ~c:1. (); w ~id:2 ~q:0.8 ~c:2. () ]

let test_pool_basics () =
  let p = pool3 () in
  check_int "size" 3 (Workers.Pool.size p);
  check_bool "nonempty" false (Workers.Pool.is_empty p);
  check_float "total cost" 6. (Workers.Pool.total_cost p);
  Alcotest.(check (array (float 1e-9))) "qualities" [| 0.9; 0.6; 0.8 |]
    (Workers.Pool.qualities p);
  check_close 1e-12 "mean quality" (2.3 /. 3.) (Workers.Pool.mean_quality p)

let test_pool_get_bounds () =
  Alcotest.check_raises "oob" (Invalid_argument "Pool.get: index out of bounds")
    (fun () -> ignore (Workers.Pool.get (pool3 ()) 3))

let test_pool_membership () =
  let p = pool3 () in
  check_bool "mem" true (Workers.Pool.mem_id p 1);
  check_bool "not mem" false (Workers.Pool.mem_id p 9);
  (match Workers.Pool.find_id p 2 with
  | Some x -> check_float "found quality" 0.8 (Workers.Worker.quality x)
  | None -> Alcotest.fail "find_id");
  let p' = Workers.Pool.remove_id p 1 in
  check_int "removed" 2 (Workers.Pool.size p');
  check_bool "gone" false (Workers.Pool.mem_id p' 1)

let test_pool_add_union () =
  let p = Workers.Pool.add (pool3 ()) (w ~id:3 ~q:0.5 ~c:4. ()) in
  check_int "added" 4 (Workers.Pool.size p);
  let u = Workers.Pool.union (pool3 ()) (pool3 ()) in
  check_int "union" 6 (Workers.Pool.size u)

let test_pool_sorts () =
  let by_q = Workers.Pool.sorted_by_quality_desc (pool3 ()) in
  Alcotest.(check (array (float 1e-9))) "quality order" [| 0.9; 0.8; 0.6 |]
    (Workers.Pool.qualities by_q);
  let by_c = Workers.Pool.sorted_by_cost (pool3 ()) in
  Alcotest.(check (array (float 1e-9))) "cost order" [| 1.; 2.; 3. |]
    (Workers.Pool.costs by_c)

let test_pool_take_sub () =
  let p = Workers.Pool.take 2 (pool3 ()) in
  check_int "take" 2 (Workers.Pool.size p);
  let s = Workers.Pool.sub (pool3 ()) [ 2; 0 ] in
  Alcotest.(check (array (float 1e-9))) "sub order" [| 0.8; 0.9 |]
    (Workers.Pool.qualities s);
  check_int "take beyond" 3 (Workers.Pool.size (Workers.Pool.take 10 (pool3 ())))

let test_pool_subsets () =
  let subsets = List.of_seq (Workers.Pool.subsets (pool3 ())) in
  check_int "count" 8 (List.length subsets);
  check_bool "has empty" true
    (List.exists (fun s -> Workers.Pool.size s = 0) subsets);
  check_bool "has full" true
    (List.exists (fun s -> Workers.Pool.size s = 3) subsets);
  (* All subsets distinct. *)
  let keys =
    List.map
      (fun s ->
        String.concat ","
          (List.map (fun x -> string_of_int (Workers.Worker.id x)) (Workers.Pool.to_list s)))
      subsets
  in
  check_int "distinct" 8 (List.length (List.sort_uniq compare keys))

let test_pool_filter_equal () =
  let p = Workers.Pool.filter (fun x -> Workers.Worker.quality x > 0.7) (pool3 ()) in
  check_int "filtered" 2 (Workers.Pool.size p);
  check_bool "equal self" true (Workers.Pool.equal (pool3 ()) (pool3 ()));
  check_bool "not equal" false (Workers.Pool.equal p (pool3 ()))

(* ---- Generator ------------------------------------------------------- *)

let test_generator_ranges =
  qtest ~count:50 "gaussian pool respects clamps" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = Prob.Rng.create seed in
      let p = Workers.Generator.gaussian_pool g Workers.Generator.default 30 in
      Workers.Pool.size p = 30
      && Array.for_all
           (fun q -> q >= 0.5 && q <= 0.99)
           (Workers.Pool.qualities p)
      && Array.for_all (fun c -> c >= 0.01) (Workers.Pool.costs p))

let test_generator_ids () =
  let g = Prob.Rng.create 1 in
  let p = Workers.Generator.gaussian_pool g Workers.Generator.default 5 in
  List.iteri
    (fun i x -> check_int "sequential ids" i (Workers.Worker.id x))
    (Workers.Pool.to_list p)

let test_generator_uniform_cost () =
  let g = Prob.Rng.create 2 in
  let p = Workers.Generator.uniform_cost_pool g Workers.Generator.default ~cost:0.3 7 in
  Array.iter (fun c -> check_float "uniform" 0.3 c) (Workers.Pool.costs p);
  let free = Workers.Generator.free_pool g Workers.Generator.default 4 in
  check_float "free" 0. (Workers.Pool.total_cost free)

let test_generator_beta () =
  let g = Prob.Rng.create 3 in
  let p = Workers.Generator.beta_quality_pool g ~a:2. ~b:2. Workers.Generator.default 50 in
  Array.iter
    (fun q -> check_bool "in range" true (q >= 0.5 && q <= 0.99))
    (Workers.Pool.qualities p)

let test_figure1_pool () =
  let p = Workers.Generator.figure1_pool () in
  check_int "seven workers" 7 (Workers.Pool.size p);
  let a = Workers.Pool.get p 0 in
  Alcotest.(check string) "A" "A" (Workers.Worker.name a);
  check_float "A quality" 0.77 (Workers.Worker.quality a);
  check_float "A cost" 9. (Workers.Worker.cost a);
  check_float "total" 37. (Workers.Pool.total_cost p)

(* ---- Confusion ------------------------------------------------------- *)

let test_confusion_binary_embed () =
  let c = Workers.Confusion.of_binary (w ~id:1 ~q:0.8 ~c:2. ()) in
  check_int "labels" 2 (Workers.Confusion.labels c);
  check_float "diag" 0.8 (Workers.Confusion.prob c ~truth:0 ~vote:0);
  check_close 1e-12 "off" 0.2 (Workers.Confusion.prob c ~truth:0 ~vote:1);
  check_float "accuracy" 0.8 (Workers.Confusion.accuracy_given_uniform_prior c);
  check_bool "dominant" true (Workers.Confusion.diagonal_dominant c)

let test_confusion_validation () =
  Alcotest.check_raises "non-square" (Invalid_argument "Confusion.make: matrix not square")
    (fun () ->
      ignore
        (Workers.Confusion.make ~id:0 ~matrix:[| [| 1.; 0. |]; [| 1. |] |] ~cost:0. ()));
  Alcotest.check_raises "bad row sum"
    (Invalid_argument "Confusion.make: row does not sum to 1") (fun () ->
      ignore
        (Workers.Confusion.make ~id:0
           ~matrix:[| [| 0.5; 0.4 |]; [| 0.5; 0.5 |] |]
           ~cost:0. ()));
  Alcotest.check_raises "negative"
    (Invalid_argument "Confusion.make: negative entry") (fun () ->
      ignore
        (Workers.Confusion.make ~id:0
           ~matrix:[| [| 1.1; -0.1 |]; [| 0.5; 0.5 |] |]
           ~cost:0. ()));
  Alcotest.check_raises "one label" (Invalid_argument "Confusion.make: need at least 2 labels")
    (fun () -> ignore (Workers.Confusion.make ~id:0 ~matrix:[| [| 1. |] |] ~cost:0. ()))

let test_confusion_spammer () =
  let s = Workers.Confusion.uniform_spammer ~labels:4 ~id:0 ~cost:1. in
  check_float "uniform rows" 0.25 (Workers.Confusion.prob s ~truth:2 ~vote:3);
  check_float "accuracy" 0.25 (Workers.Confusion.accuracy_given_uniform_prior s);
  check_bool "weakly dominant" true (Workers.Confusion.diagonal_dominant s)

let test_confusion_row_copy () =
  let c = Workers.Confusion.symmetric_binary ~quality:0.7 ~id:0 ~cost:0. in
  let row = Workers.Confusion.row c 0 in
  row.(0) <- 0.;
  check_float "immutable" 0.7 (Workers.Confusion.prob c ~truth:0 ~vote:0)

let test_confusion_label_bounds () =
  let c = Workers.Confusion.symmetric_binary ~quality:0.7 ~id:0 ~cost:0. in
  Alcotest.check_raises "vote range" (Invalid_argument "Confusion.prob: label out of range")
    (fun () -> ignore (Workers.Confusion.prob c ~truth:0 ~vote:2))

(* ---- History / Estimator --------------------------------------------- *)

let test_history_counts () =
  let h = Workers.History.create ~worker_id:5 () in
  Workers.History.record_gold h ~task_id:0 ~vote:1 ~truth:1;
  Workers.History.record_gold h ~task_id:1 ~vote:0 ~truth:1;
  Workers.History.record_vote h ~task_id:2 ~vote:1;
  check_int "worker id" 5 (Workers.History.worker_id h);
  check_int "length" 3 (Workers.History.length h);
  check_int "graded" 2 (Workers.History.graded_count h);
  check_int "correct" 1 (Workers.History.correct_count h);
  (match Workers.History.empirical_quality h with
  | Some q -> check_float "empirical" 0.5 q
  | None -> Alcotest.fail "expected quality");
  check_int "answered tasks" 3 (List.length (Workers.History.answered_tasks h))

let test_history_dedup () =
  let h = Workers.History.create ~worker_id:0 () in
  Workers.History.record_vote h ~task_id:7 ~vote:0;
  Workers.History.record_vote h ~task_id:7 ~vote:1;
  check_int "dedup tasks" 1 (List.length (Workers.History.answered_tasks h));
  check_int "entries kept" 2 (Workers.History.length h)

let test_history_empty_quality () =
  let h = Workers.History.create ~worker_id:0 () in
  check_bool "no grades" true (Workers.History.empirical_quality h = None)

let test_estimator_empirical () =
  let h = Workers.History.create ~worker_id:0 () in
  for i = 0 to 7 do
    Workers.History.record_gold h ~task_id:i ~vote:1 ~truth:(if i < 6 then 1 else 0)
  done;
  check_float "raw" 0.75 (Workers.Estimator.empirical h);
  check_close 1e-12 "smoothed" (7. /. 10.)
    (Workers.Estimator.empirical ~prior_strength:2. h);
  check_close 1e-12 "beta posterior" (8. /. 12.)
    (Workers.Estimator.beta_posterior_mean ~a:2. ~b:2. h)

let test_estimator_default_half () =
  let h = Workers.History.create ~worker_id:0 () in
  check_float "ungraded -> 0.5" 0.5 (Workers.Estimator.empirical h)

let test_estimate_pool () =
  let mk id correct total =
    let h = Workers.History.create ~worker_id:id () in
    for i = 0 to total - 1 do
      Workers.History.record_gold h ~task_id:i ~vote:1
        ~truth:(if i < correct then 1 else 0)
    done;
    h
  in
  let pool =
    Workers.Estimator.estimate_pool
      ~costs:(fun id -> float_of_int id +. 1.)
      [ mk 0 9 10; mk 1 5 10 ]
  in
  check_int "size" 2 (Workers.Pool.size pool);
  check_float "q0" 0.9 (Workers.Worker.quality (Workers.Pool.get pool 0));
  check_float "c1" 2. (Workers.Worker.cost (Workers.Pool.get pool 1))

let test_confusion_empirical () =
  let h = Workers.History.create ~worker_id:0 () in
  (* Perfect on label 0; always answers 2 when truth is 1. *)
  for i = 0 to 9 do
    Workers.History.record_gold h ~task_id:i ~vote:0 ~truth:0
  done;
  for i = 10 to 19 do
    Workers.History.record_gold h ~task_id:i ~vote:2 ~truth:1
  done;
  let m = Workers.Estimator.confusion_empirical ~labels:3 ~prior_strength:0. h in
  check_float "row0 diag" 1. m.(0).(0);
  check_float "row1 to 2" 1. m.(1).(2);
  (* Row 2 never graded: uniform fallback. *)
  check_close 1e-12 "row2 uniform" (1. /. 3.) m.(2).(0)

(* ---- Dawid-Skene ------------------------------------------------------ *)

(* Synthetic corpus: known truths, workers voting by latent quality. *)
let synth_votes rng ~n_tasks ~qualities =
  let truths = Array.init n_tasks (fun i -> i mod 2) in
  let votes = ref [] in
  Array.iteri
    (fun task truth ->
      Array.iteri
        (fun worker q ->
          let label = if Prob.Rng.bernoulli rng q then truth else 1 - truth in
          votes := { Workers.Dawid_skene.task; worker; label } :: !votes)
        qualities)
    truths;
  (truths, !votes)

let test_ds_recovers_labels () =
  let rng = Prob.Rng.create 101 in
  let qualities = [| 0.9; 0.85; 0.8; 0.9; 0.75 |] in
  let n_tasks = 60 in
  let truths, votes = synth_votes rng ~n_tasks ~qualities in
  let r =
    Workers.Dawid_skene.run ~n_tasks ~n_workers:5 ~n_labels:2 votes
  in
  let agree = ref 0 in
  Array.iteri (fun t lab -> if lab = truths.(t) then incr agree) r.labels;
  (* EM may globally flip labels; accept either polarity. *)
  let agreement = float_of_int !agree /. float_of_int n_tasks in
  let agreement = Float.max agreement (1. -. agreement) in
  check_bool "label recovery > 95%" true (agreement > 0.95)

let test_ds_recovers_qualities () =
  let rng = Prob.Rng.create 202 in
  let qualities = [| 0.95; 0.9; 0.85; 0.8; 0.75; 0.7; 0.9 |] in
  let n_tasks = 200 in
  let _, votes = synth_votes rng ~n_tasks ~qualities in
  let r = Workers.Dawid_skene.run ~n_tasks ~n_workers:7 ~n_labels:2 votes in
  let est = Workers.Dawid_skene.binary_qualities r in
  (* Accept the globally flipped solution too. *)
  let err polarity =
    Prob.Stats.mean
      (Array.mapi
         (fun i q ->
           let e = if polarity then est.(i) else 1. -. est.(i) in
           Float.abs (e -. q))
         qualities)
  in
  check_bool "quality recovery" true (Float.min (err true) (err false) < 0.05)

let test_ds_posteriors_normalized () =
  let rng = Prob.Rng.create 303 in
  let _, votes = synth_votes rng ~n_tasks:20 ~qualities:[| 0.8; 0.8; 0.8 |] in
  let r = Workers.Dawid_skene.run ~n_tasks:20 ~n_workers:3 ~n_labels:2 votes in
  Array.iter
    (fun post ->
      check_close 1e-9 "posterior sums to 1" 1. (Prob.Kahan.sum_array post))
    r.posteriors;
  check_close 1e-9 "priors sum to 1" 1. (Prob.Kahan.sum_array r.class_priors)

let test_ds_unvoted_task_uniform () =
  let votes = [ { Workers.Dawid_skene.task = 0; worker = 0; label = 1 } ] in
  let r = Workers.Dawid_skene.run ~n_tasks:2 ~n_workers:1 ~n_labels:2 votes in
  (* Task 1 got no votes: posterior must follow the class prior only. *)
  check_close 1e-6 "no-vote posterior = prior" r.class_priors.(0) r.posteriors.(1).(0)

let test_ds_validation () =
  Alcotest.check_raises "bad task" (Invalid_argument "Dawid_skene: task id") (fun () ->
      ignore
        (Workers.Dawid_skene.run ~n_tasks:1 ~n_workers:1 ~n_labels:2
           [ { Workers.Dawid_skene.task = 5; worker = 0; label = 0 } ]));
  Alcotest.check_raises "bad labels"
    (Invalid_argument "Dawid_skene.run: need at least 2 labels") (fun () ->
      ignore (Workers.Dawid_skene.run ~n_tasks:1 ~n_workers:1 ~n_labels:1 []))

let test_ds_iteration_cap () =
  let rng = Prob.Rng.create 404 in
  let _, votes = synth_votes rng ~n_tasks:10 ~qualities:[| 0.7; 0.7 |] in
  let r =
    Workers.Dawid_skene.run ~max_iterations:3 ~n_tasks:10 ~n_workers:2 ~n_labels:2 votes
  in
  check_bool "respects cap" true (r.iterations <= 3)

let test_ds_multiclass () =
  (* Three labels, strong workers: labels should be recovered. *)
  let rng = Prob.Rng.create 505 in
  let n_tasks = 60 in
  let truths = Array.init n_tasks (fun i -> i mod 3) in
  let votes = ref [] in
  Array.iteri
    (fun task truth ->
      for worker = 0 to 4 do
        let label =
          if Prob.Rng.bernoulli rng 0.85 then truth
          else (truth + 1 + Prob.Rng.int rng 2) mod 3
        in
        votes := { Workers.Dawid_skene.task; worker; label } :: !votes
      done)
    truths;
  let r = Workers.Dawid_skene.run ~n_tasks ~n_workers:5 ~n_labels:3 !votes in
  let agree = ref 0 in
  Array.iteri (fun t lab -> if lab = truths.(t) then incr agree) r.labels;
  check_bool "multiclass recovery > 90%" true
    (float_of_int !agree /. float_of_int n_tasks > 0.9)

(* ---- Spammer scoring --------------------------------------------------- *)

let test_spammer_score_bounds =
  qtest ~count:100 "score lies in [0, 1]" QCheck2.Gen.(float_range 0. 1.) (fun q ->
      let c = Workers.Confusion.symmetric_binary ~quality:q ~id:0 ~cost:0. in
      let s = Workers.Spammer.score c in
      s >= -1e-12 && s <= 1. +. 1e-12)

let test_spammer_binary_correspondence =
  qtest ~count:100 "binary score = |2q - 1|" QCheck2.Gen.(float_range 0. 1.) (fun q ->
      let c = Workers.Confusion.symmetric_binary ~quality:q ~id:0 ~cost:0. in
      Float.abs
        (Workers.Spammer.score c -. Workers.Spammer.binary_score_matches_quality ~quality:q)
      < 1e-9)

let test_spammer_detects_spammer () =
  let s = Workers.Confusion.uniform_spammer ~labels:3 ~id:0 ~cost:0. in
  check_float "spammer scores 0" 0. (Workers.Spammer.score s);
  check_bool "flagged" true (Workers.Spammer.is_spammer s);
  let good = Workers.Confusion.symmetric_binary ~quality:0.9 ~id:1 ~cost:0. in
  check_bool "good not flagged" false (Workers.Spammer.is_spammer good)

let test_spammer_rank () =
  let workers =
    [|
      Workers.Confusion.symmetric_binary ~quality:0.6 ~id:0 ~cost:0.;
      Workers.Confusion.symmetric_binary ~quality:0.9 ~id:1 ~cost:0.;
      Workers.Confusion.uniform_spammer ~labels:2 ~id:2 ~cost:0.;
    |]
  in
  let ranked = Workers.Spammer.rank workers in
  check_int "best first" 1 (Workers.Confusion.id ranked.(0));
  check_int "spammer last" 2 (Workers.Confusion.id ranked.(2))

(* ---- Pool_io ------------------------------------------------------------- *)

let test_pool_io_roundtrip () =
  let pool = Workers.Generator.figure1_pool () in
  let parsed = Workers.Pool_io.of_csv_string (Workers.Pool_io.to_csv_string pool) in
  check_bool "roundtrip" true (Workers.Pool.equal pool parsed)

let test_pool_io_parsing () =
  let pool =
    Workers.Pool_io.of_csv_string
      "name,quality,cost\n# comment line\nA, 0.77, 9\n\nB,0.7,5\n"
  in
  check_int "two workers" 2 (Workers.Pool.size pool);
  Alcotest.(check string) "name" "A" (Workers.Worker.name (Workers.Pool.get pool 0));
  check_float "quality" 0.77 (Workers.Worker.quality (Workers.Pool.get pool 0));
  check_float "cost" 5. (Workers.Worker.cost (Workers.Pool.get pool 1))

let test_pool_io_headerless () =
  let pool = Workers.Pool_io.of_csv_string "A,0.6,1\nB,0.7,2\n" in
  check_int "no header needed" 2 (Workers.Pool.size pool)

let test_pool_io_errors () =
  (try
     ignore (Workers.Pool_io.of_csv_string "A,not_a_number,1\n");
     Alcotest.fail "expected parse failure"
   with Failure msg ->
     check_bool "line number in message" true
       (String.length msg > 0
       &&
       let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains msg "line 1"));
  try
    ignore (Workers.Pool_io.of_csv_string "A,0.5\n");
    Alcotest.fail "expected arity failure"
  with Failure _ -> ()

let test_pool_io_file () =
  let path = Filename.temp_file "optjs_pool" ".csv" in
  let pool = Workers.Generator.figure1_pool () in
  Workers.Pool_io.save path pool;
  let loaded = Workers.Pool_io.load path in
  Sys.remove path;
  check_bool "file roundtrip" true (Workers.Pool.equal pool loaded)

(* ---- Calib (streaming calibration) ----------------------------------- *)

let test_history_ring () =
  let h = Workers.History.create ~window:4 ~worker_id:1 () in
  for i = 0 to 9 do
    Workers.History.record_gold h ~task_id:i ~vote:1
      ~truth:(if i mod 2 = 0 then 1 else 0)
  done;
  check_int "window" 4 (Workers.History.window h);
  check_int "resident capped" 4 (Workers.History.resident h);
  (* Summary counters cover the full stream, not just the residents. *)
  check_int "full-stream length" 10 (Workers.History.length h);
  check_int "full-stream graded" 10 (Workers.History.graded_count h);
  check_int "full-stream correct" 5 (Workers.History.correct_count h);
  (match Workers.History.empirical_quality h with
  | Some q -> check_float "exact despite eviction" 0.5 q
  | None -> Alcotest.fail "expected quality");
  let ids es = List.map (fun (e : Workers.History.entry) -> e.task_id) es in
  Alcotest.(check (list int))
    "newest four, oldest first" [ 6; 7; 8; 9 ]
    (ids (Workers.History.entries h));
  Alcotest.(check (list int)) "recent 2" [ 8; 9 ] (ids (Workers.History.recent h 2));
  Alcotest.(check (list int))
    "recent clamps to resident" [ 6; 7; 8; 9 ]
    (ids (Workers.History.recent h 99))

let calib_vote ?truth task worker label = { Workers.Calib.task; worker; label; truth }

let feed_exn calib votes =
  match Workers.Calib.feed calib votes with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("feed: " ^ e)

let test_calib_gold_convergence () =
  let calib = Workers.Calib.create ~base:(Workers.Calib.Scalar [| 0.8; 0.5 |]) () in
  check_float "starts at the registration" 0.8 (Workers.Calib.quality calib 0);
  (* Worker 0's true agreement with gold is 90%. *)
  let votes =
    List.init 100 (fun i ->
        calib_vote ~truth:1 i 0 (if i mod 10 = 0 then 0 else 1))
  in
  feed_exn calib votes;
  check_int "buffered, not applied" 100 (Workers.Calib.pending calib);
  check_bool "a batch is due" true (Workers.Calib.due calib);
  let r = Workers.Calib.step calib in
  check_int "applied" 100 r.Workers.Calib.applied;
  check_bool "estimate moved" true r.Workers.Calib.changed;
  check_close 0.05 "converged to the gold rate" 0.9 (Workers.Calib.quality calib 0);
  check_int "votes seen" 100 (Workers.Calib.votes_seen calib 0);
  check_float "untouched worker keeps its base" 0.5 (Workers.Calib.quality calib 1)

let test_calib_feed_validation () =
  let calib = Workers.Calib.create ~base:(Workers.Calib.Scalar [| 0.8 |]) () in
  (match Workers.Calib.feed calib [ calib_vote 0 3 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-pool worker accepted");
  (match Workers.Calib.feed calib [ calib_vote 0 0 7 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range label accepted");
  (* A rejected batch buffers nothing, even its valid prefix. *)
  (match Workers.Calib.feed calib [ calib_vote 0 0 1; calib_vote 1 0 (-1) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad batch accepted");
  check_int "nothing buffered" 0 (Workers.Calib.pending calib)

let test_calib_spammer_flagged () =
  let calib =
    Workers.Calib.create ~base:(Workers.Calib.Scalar [| 0.85; 0.85 |]) ()
  in
  (* Worker 0 turns into a coin flipper: 12 of 24 gold answers correct,
     indistinguishable from binary chance while the standing estimate
     (0.85) is informative — the spammer-onset pattern. *)
  let votes = List.init 24 (fun i -> calib_vote ~truth:1 i 0 (i mod 2)) in
  feed_exn calib votes;
  let r = Workers.Calib.step calib in
  (match r.Workers.Calib.drifted with
  | [ d ] ->
      check_int "worker flagged" 0 d.Workers.Calib.worker;
      check_bool "spammer onset" true
        (d.Workers.Calib.kind = Workers.Calib.Spammer_onset);
      check_float "estimate before" 0.85 d.Workers.Calib.before;
      check_float "recent rate" 0.5 d.Workers.Calib.after
  | ds -> Alcotest.fail (Printf.sprintf "expected one drift flag, got %d" (List.length ds)));
  check_int "drift counted" 1 (Workers.Calib.drift_count calib);
  check_close 0.05 "re-anchored near chance" 0.5 (Workers.Calib.quality calib 0);
  check_float "steady worker untouched" 0.85 (Workers.Calib.quality calib 1)

let test_history_class_counts () =
  let h = Workers.History.create ~window:8 ~worker_id:0 () in
  Workers.History.record_gold h ~task_id:0 ~vote:0 ~truth:0;
  Workers.History.record_gold h ~task_id:1 ~vote:1 ~truth:1;
  Workers.History.record_gold h ~task_id:2 ~vote:0 ~truth:1;
  (* Ungraded votes resolve to None through the gold resolver: skipped. *)
  Workers.History.record_vote h ~task_id:3 ~vote:2;
  Workers.History.record_gold h ~task_id:4 ~vote:2 ~truth:2;
  Workers.History.record_gold h ~task_id:5 ~vote:0 ~truth:2;
  let truth (e : Workers.History.entry) = e.truth in
  let graded, correct =
    Workers.History.recent_class_counts h ~labels:3 ~k:10 ~truth
  in
  Alcotest.(check (array int)) "graded per class" [| 1; 2; 2 |] graded;
  Alcotest.(check (array int)) "correct per class" [| 1; 1; 1 |] correct;
  (* k keeps only the newest entries. *)
  let graded2, correct2 =
    Workers.History.recent_class_counts h ~labels:3 ~k:2 ~truth
  in
  Alcotest.(check (array int)) "k window graded" [| 0; 0; 2 |] graded2;
  Alcotest.(check (array int)) "k window correct" [| 0; 0; 1 |] correct2;
  (* Out-of-range labels are skipped, not counted. *)
  Workers.History.record_gold h ~task_id:6 ~vote:0 ~truth:7;
  let graded3, _ =
    Workers.History.recent_class_counts h ~labels:3 ~k:10 ~truth
  in
  Alcotest.(check (array int)) "bad label skipped" [| 1; 2; 2 |] graded3

let test_calib_per_class_drift () =
  (* A matrix worker who turns bad on one rare truth label: 19 of 24
     recent gold answers are on classes 0/1 and all correct, the 5 on
     class 2 are all wrong.  The pooled windowed rate 19/24 = 0.79 sits
     well inside the binomial bound around the 0.8 anchor (|0.79 - 0.8|
     = 0.01 < 3.5·√(0.8·0.2/24) = 0.29), so the scalar test misses the
     shift — but class 2's own window (0/5 vs 0.8, bound
     3.5·√(0.8·0.2/5) = 0.63) flags it.  Worker 1 takes the same pooled
     damage spread evenly across classes and must stay unflagged. *)
  let m =
    [| [| 0.8; 0.1; 0.1 |]; [| 0.1; 0.8; 0.1 |]; [| 0.1; 0.1; 0.8 |] |]
  in
  let calib = Workers.Calib.create ~base:(Workers.Calib.Matrix [| m; m |]) () in
  let votes0 =
    List.init 24 (fun i ->
        if i < 19 then calib_vote ~truth:(i mod 2) i 0 (i mod 2)
        else calib_vote ~truth:2 i 0 0)
  in
  let votes1 =
    List.init 24 (fun i ->
        let truth = i mod 3 in
        let vote = if i mod 5 = 4 then (truth + 1) mod 3 else truth in
        calib_vote ~truth (100 + i) 1 vote)
  in
  feed_exn calib (votes0 @ votes1);
  let r = Workers.Calib.step calib in
  (match r.Workers.Calib.drifted with
  | [ d ] ->
      check_int "the one-class worker flagged" 0 d.Workers.Calib.worker;
      check_bool "quality shift, not spam" true
        (d.Workers.Calib.kind = Workers.Calib.Quality_shift)
  | ds ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one drift flag, got %d"
           (List.length ds)));
  check_int "drift counted" 1 (Workers.Calib.drift_count calib)

(* Random ungraded vote sets: n workers, each voting on a random subset of
   small-id tasks.  Task counts stay below [drift_min] so no drift fires
   and below every window so nothing truncates — the regime where the
   streaming fit must coincide with the offline one exactly. *)
let calib_stream_gen =
  QCheck2.Gen.(
    int_range 2 5 >>= fun n ->
    int_range 3 10 >>= fun tasks ->
    list_size (return (n * tasks)) (option (int_range 0 1)) >>= fun labels ->
    let triples =
      List.concat
        (List.mapi
           (fun idx label ->
             match label with
             | None -> []
             | Some l -> [ (idx / n, idx mod n, l) ])
           labels)
    in
    let triples = if triples = [] then [ (0, 0, 0) ] else triples in
    return (n, triples))

(* Offline reference: the same votes handed to Dawid_skene.run directly,
   with the calibrator's canonical ordering (tasks by id densely
   re-indexed, votes by worker). *)
let offline_binary_fit ~n triples =
  let module IS = Set.Make (Int) in
  let task_ids =
    IS.elements (List.fold_left (fun s (t, _, _) -> IS.add t s) IS.empty triples)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i t -> Hashtbl.add index t i) task_ids;
  let votes =
    List.sort compare (List.map (fun (t, w, l) -> (Hashtbl.find index t, w, l)) triples)
    |> List.map (fun (task, worker, label) -> { Workers.Dawid_skene.task; worker; label })
  in
  Workers.Dawid_skene.run ~max_iterations:200 ~smoothing:0.01
    ~n_tasks:(List.length task_ids) ~n_workers:n ~n_labels:2 votes

let test_calib_matches_offline_em =
  qtest ~count:100 "recalibrate = offline Dawid-Skene" calib_stream_gen
    (fun (n, triples) ->
      let calib =
        Workers.Calib.create ~base:(Workers.Calib.Scalar (Array.make n 0.7)) ()
      in
      (match
         Workers.Calib.feed calib
           (List.map (fun (t, w, l) -> calib_vote t w l) triples)
       with
      | Ok _ -> ()
      | Error e -> failwith e);
      ignore (Workers.Calib.recalibrate calib);
      let streaming =
        match Workers.Calib.em_qualities calib with
        | Some q -> q
        | None -> failwith "EM never ran"
      in
      let offline = Workers.Dawid_skene.binary_qualities (offline_binary_fit ~n triples) in
      Array.length streaming = n
      && Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-9) streaming offline)

let test_calib_order_invariance =
  qtest ~count:100 "ingestion order does not matter" calib_stream_gen
    (fun (n, triples) ->
      (* Every third vote is gold so the Beta side is exercised too. *)
      let votes =
        List.mapi
          (fun i (t, w, l) ->
            calib_vote ?truth:(if i mod 3 = 0 then Some l else None) t w l)
          triples
      in
      let fit order chunk =
        let calib =
          Workers.Calib.create ~base:(Workers.Calib.Scalar (Array.make n 0.6)) ()
        in
        List.iteri
          (fun i v ->
            (match Workers.Calib.feed calib [ v ] with
            | Ok _ -> ()
            | Error e -> failwith e);
            if (i + 1) mod chunk = 0 then ignore (Workers.Calib.step calib))
          order;
        ignore (Workers.Calib.recalibrate calib);
        Workers.Calib.qualities calib
      in
      let forward = fit votes 4 and backward = fit (List.rev votes) 7 in
      Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-12) forward backward)

let test_calib_recal_after_drift_refits () =
  (* After a spammer reset the retained EM votes of the flagged worker are
     dropped; a forced recalibration must still run cleanly and keep the
     other estimates sane. *)
  let calib =
    Workers.Calib.create ~base:(Workers.Calib.Scalar [| 0.9; 0.6; 0.6 |]) ()
  in
  let votes =
    List.concat
      (List.init 30 (fun t ->
           [
             calib_vote ~truth:1 t 0 (t mod 2);
             calib_vote t 1 1;
             calib_vote t 2 1;
           ]))
  in
  feed_exn calib votes;
  ignore (Workers.Calib.step calib);
  check_bool "spammer flagged" true (Workers.Calib.drift_count calib > 0);
  let r = Workers.Calib.recalibrate calib in
  check_int "nothing newly applied" 0 r.Workers.Calib.applied;
  Array.iter
    (fun q -> check_bool "estimates stay in (0,1)" true (q > 0. && q < 1.))
    (Workers.Calib.qualities calib)

let () =
  Alcotest.run "workers"
    [
      ( "worker",
        [
          Alcotest.test_case "make" `Quick test_worker_make;
          Alcotest.test_case "validation" `Quick test_worker_validation;
          Alcotest.test_case "with_quality" `Quick test_worker_with_quality;
          Alcotest.test_case "reliable" `Quick test_worker_reliable;
          Alcotest.test_case "orders" `Quick test_worker_orders;
        ] );
      ( "pool",
        [
          Alcotest.test_case "basics" `Quick test_pool_basics;
          Alcotest.test_case "get bounds" `Quick test_pool_get_bounds;
          Alcotest.test_case "membership" `Quick test_pool_membership;
          Alcotest.test_case "add/union" `Quick test_pool_add_union;
          Alcotest.test_case "sorts" `Quick test_pool_sorts;
          Alcotest.test_case "take/sub" `Quick test_pool_take_sub;
          Alcotest.test_case "subsets" `Quick test_pool_subsets;
          Alcotest.test_case "filter/equal" `Quick test_pool_filter_equal;
        ] );
      ( "generator",
        [
          test_generator_ranges;
          Alcotest.test_case "ids" `Quick test_generator_ids;
          Alcotest.test_case "uniform cost / free" `Quick test_generator_uniform_cost;
          Alcotest.test_case "beta" `Quick test_generator_beta;
          Alcotest.test_case "figure 1" `Quick test_figure1_pool;
        ] );
      ( "confusion",
        [
          Alcotest.test_case "binary embed" `Quick test_confusion_binary_embed;
          Alcotest.test_case "validation" `Quick test_confusion_validation;
          Alcotest.test_case "spammer" `Quick test_confusion_spammer;
          Alcotest.test_case "row copy" `Quick test_confusion_row_copy;
          Alcotest.test_case "label bounds" `Quick test_confusion_label_bounds;
        ] );
      ( "history/estimator",
        [
          Alcotest.test_case "counts" `Quick test_history_counts;
          Alcotest.test_case "dedup" `Quick test_history_dedup;
          Alcotest.test_case "empty quality" `Quick test_history_empty_quality;
          Alcotest.test_case "empirical" `Quick test_estimator_empirical;
          Alcotest.test_case "ungraded default" `Quick test_estimator_default_half;
          Alcotest.test_case "estimate pool" `Quick test_estimate_pool;
          Alcotest.test_case "confusion empirical" `Quick test_confusion_empirical;
        ] );
      ( "spammer",
        [
          test_spammer_score_bounds;
          test_spammer_binary_correspondence;
          Alcotest.test_case "detects spammer" `Quick test_spammer_detects_spammer;
          Alcotest.test_case "rank" `Quick test_spammer_rank;
        ] );
      ( "pool_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_pool_io_roundtrip;
          Alcotest.test_case "parsing" `Quick test_pool_io_parsing;
          Alcotest.test_case "headerless" `Quick test_pool_io_headerless;
          Alcotest.test_case "errors" `Quick test_pool_io_errors;
          Alcotest.test_case "file roundtrip" `Quick test_pool_io_file;
        ] );
      ( "calib",
        [
          Alcotest.test_case "history ring" `Quick test_history_ring;
          Alcotest.test_case "gold convergence" `Quick test_calib_gold_convergence;
          Alcotest.test_case "feed validation" `Quick test_calib_feed_validation;
          Alcotest.test_case "spammer flagged" `Quick test_calib_spammer_flagged;
          Alcotest.test_case "per-class window counts" `Quick
            test_history_class_counts;
          Alcotest.test_case "per-class drift flagged" `Quick
            test_calib_per_class_drift;
          test_calib_matches_offline_em;
          test_calib_order_invariance;
          Alcotest.test_case "recal after drift" `Quick
            test_calib_recal_after_drift_refits;
        ] );
      ( "dawid_skene",
        [
          Alcotest.test_case "recovers labels" `Quick test_ds_recovers_labels;
          Alcotest.test_case "recovers qualities" `Slow test_ds_recovers_qualities;
          Alcotest.test_case "posteriors normalized" `Quick test_ds_posteriors_normalized;
          Alcotest.test_case "unvoted task uniform" `Quick test_ds_unvoted_task_uniform;
          Alcotest.test_case "validation" `Quick test_ds_validation;
          Alcotest.test_case "iteration cap" `Quick test_ds_iteration_cap;
          Alcotest.test_case "multiclass" `Quick test_ds_multiclass;
        ] );
    ]
